(* Shared vocabulary of the GEMM pipeline passes: statement and buffer
   inventories, the tile geometry, DMA/RMA payload constructors (§4, §5),
   the software-pipelined inner subtree (§6), C-tile region assembly and
   the snapshot function that renders the partial pipeline state as a
   schedule tree after every pass ([--dump-after]). Moved here from the
   former build.ml monolith; the per-section passes in this directory are
   thin drivers over these builders. *)

open Sw_poly
open Sw_tree

(* Short-hands over quasi-affine trees. *)
let v = Aff.var
let c = Aff.const
let ( +: ) = Aff.add
let ( *: ) = Aff.mul
let fd = Aff.fdiv
let fm = Aff.fmod

let gemm_stmt (spec : Spec.t) =
  let batched = spec.Spec.batch <> None in
  let iters = (if batched then [ "b" ] else []) @ [ "i"; "j"; "k" ] in
  let domain = Bset.universe ~params:[] ~dims:iters in
  let bound t (d, hi) =
    Bset.constrain_range t d ~lo:(Aff.const 0) ~hi:(Aff.const hi)
  in
  let domain =
    List.fold_left bound domain
      ((match spec.Spec.batch with Some b -> [ ("b", b) ] | None -> [])
      @ [ ("i", spec.Spec.m); ("j", spec.Spec.n); ("k", spec.Spec.k) ])
  in
  let pre = if batched then [ v "b" ] else [] in
  let a_idx = if spec.Spec.ta then [ v "k"; v "i" ] else [ v "i"; v "k" ] in
  let b_idx = if spec.Spec.tb then [ v "j"; v "k" ] else [ v "k"; v "j" ] in
  Stmt.make ~name:"S1" ~iters ~domain
    ~accesses:
      [
        Access.write "C" (pre @ [ v "i"; v "j" ]);
        Access.read "C" (pre @ [ v "i"; v "j" ]);
        Access.read "A" (pre @ a_idx);
        Access.read "B" (pre @ b_idx);
      ]

(* ------------------------------------------------------------------ *)
(* Buffer and reply names                                               *)
(* ------------------------------------------------------------------ *)

let buf_c = "ldm_C"
let buf_a = "ldm_A"
let buf_b = "ldm_B"
let buf_bca = "ldm_bcA"
let buf_bcb = "ldm_bcB"

let replies (o : Options.t) =
  [ "rCg"; "rCp"; "rA"; "rB" ]
  @ if o.Options.use_rma then [ "rAs"; "rAr"; "rBs"; "rBr" ] else []

(* SPM tiles keep the storage order of the transferred region: a
   transposed operand's tile is stored transposed and the micro kernel
   reads it accordingly. *)
let a_tile_shape (spec : Spec.t) (t : Tile_model.t) =
  if spec.Spec.ta then (t.Tile_model.tk, t.Tile_model.tm)
  else (t.Tile_model.tm, t.Tile_model.tk)

let b_tile_shape (spec : Spec.t) (t : Tile_model.t) =
  if spec.Spec.tb then (t.Tile_model.tn, t.Tile_model.tk)
  else (t.Tile_model.tk, t.Tile_model.tn)

let spm_decls (spec : Spec.t) (o : Options.t) (t : Tile_model.t) =
  let copies = if o.Options.hiding then 2 else 1 in
  let d name (rows, cols) copies = { Sw_ast.Ast.buf_name = name; rows; cols; copies } in
  [ d buf_c (t.Tile_model.tm, t.Tile_model.tn) 1 ]
  @ [
      d buf_a (a_tile_shape spec t) copies;
      d buf_b (b_tile_shape spec t) copies;
    ]
  @
  if o.Options.use_rma then
    [
      d buf_bca (a_tile_shape spec t) copies;
      d buf_bcb (b_tile_shape spec t) copies;
    ]
  else []

let arrays (spec : Spec.t) =
  let pre = match spec.Spec.batch with Some b -> [ b ] | None -> [] in
  let a_dims =
    if spec.Spec.ta then [ spec.Spec.k; spec.Spec.m ]
    else [ spec.Spec.m; spec.Spec.k ]
  in
  let b_dims =
    if spec.Spec.tb then [ spec.Spec.n; spec.Spec.k ]
    else [ spec.Spec.k; spec.Spec.n ]
  in
  [
    { Sw_ast.Ast.array_name = "A"; dims = pre @ a_dims };
    { Sw_ast.Ast.array_name = "B"; dims = pre @ b_dims };
    { Sw_ast.Ast.array_name = "C"; dims = pre @ [ spec.Spec.m; spec.Spec.n ] };
  ]

(* ------------------------------------------------------------------ *)
(* Extension payloads (§4, §5)                                          *)
(* ------------------------------------------------------------------ *)

type geom = {
  spec : Spec.t;
  opts : Options.t;
  tiles : Tile_model.t;
  batch : Aff.t option;
  c_row : Aff.t;  (* first C row of this CPE's tile: mesh_m*bi + tm*ti *)
  c_col : Aff.t;
}

let make_geom spec opts (tiles : Tile_model.t) =
  {
    spec;
    opts;
    tiles;
    batch = (match spec.Spec.batch with Some _ -> Some (v "b") | None -> None);
    c_row = (tiles.Tile_model.mesh_m *: v "bi") +: (tiles.Tile_model.tm *: v "ti");
    c_col = (tiles.Tile_model.mesh_n *: v "bj") +: (tiles.Tile_model.tn *: v "tj");
  }

let geom_of (st : Pass.state) =
  make_geom st.Pass.spec st.Pass.options st.Pass.tiles

(* DMA chunk ownership along the k panel: mesh column [tj] owns A chunk
   [tj mod L] and mesh row [ti] owns B chunk [ti mod L], where
   L = panel_chunks = min rows cols. On a square mesh the mod is the
   identity and is omitted, so emitted code is unchanged there; on a
   rectangular mesh the CPEs beyond L along the longer dimension fetch a
   duplicate of an owned chunk into their private SPM (they are never
   broadcast roots, which always lie below L). *)
let a_chunk g =
  let t = g.tiles in
  if t.Tile_model.mesh_cols > t.Tile_model.panel_chunks then
    fm (v "tj") t.Tile_model.panel_chunks
  else v "tj"

let b_chunk g =
  let t = g.tiles in
  if t.Tile_model.mesh_rows > t.Tile_model.panel_chunks then
    fm (v "ti") t.Tile_model.panel_chunks
  else v "ti"

let dma_c g ~put =
  let d =
    {
      Comm.array = "C";
      spm = Comm.buf buf_c;
      batch = g.batch;
      row_lo = g.c_row;
      col_lo = g.c_col;
      rows = g.tiles.Tile_model.tm;
      cols = g.tiles.Tile_model.tn;
      reply = (if put then "rCp" else "rCg");
      reply_parity = None;
    }
  in
  if put then Comm.Dma_put d else Comm.Dma_get d

(* A-tile DMA share of this CPE for outer iteration [ko_expr] (Eq. 1 of the
   paper): rows follow the CPE's mesh row, columns are the k-chunk this
   CPE's mesh column owns within the panel. Without RMA the chunk index is
   the plain reduced loop. *)
let dma_a g ~ko_expr ~chunk ~par =
  let k_lo = (g.tiles.Tile_model.panel_k *: ko_expr) +: (g.tiles.Tile_model.tk *: chunk) in
  let rows, cols = a_tile_shape g.spec g.tiles in
  let row_lo, col_lo =
    if g.spec.Spec.ta then (k_lo, g.c_row) else (g.c_row, k_lo)
  in
  Comm.Dma_get
    {
      Comm.array = "A";
      spm = Comm.buf ?parity:par buf_a;
      batch = g.batch;
      row_lo;
      col_lo;
      rows;
      cols;
      reply = "rA";
      reply_parity = par;
    }

let dma_b g ~ko_expr ~chunk ~par =
  let k_lo = (g.tiles.Tile_model.panel_k *: ko_expr) +: (g.tiles.Tile_model.tk *: chunk) in
  let rows, cols = b_tile_shape g.spec g.tiles in
  let row_lo, col_lo =
    if g.spec.Spec.tb then (g.c_col, k_lo) else (k_lo, g.c_col)
  in
  Comm.Dma_get
    {
      Comm.array = "B";
      spm = Comm.buf ?parity:par buf_b;
      batch = g.batch;
      row_lo;
      col_lo;
      rows;
      cols;
      reply = "rB";
      reply_parity = par;
    }

let wait reply par = Comm.Wait { reply; reply_parity = par }

let rma g ~dir ~root ~src_par ~dst_par =
  let src_buf, dst_buf, (rows, cols), rs, rr =
    match dir with
    | `Row -> (buf_a, buf_bca, a_tile_shape g.spec g.tiles, "rAs", "rAr")
    | `Col -> (buf_b, buf_bcb, b_tile_shape g.spec g.tiles, "rBs", "rBr")
  in
  Comm.Rma_bcast
    {
      Comm.dir;
      src = Comm.buf ?parity:src_par src_buf;
      dst = Comm.buf ?parity:dst_par dst_buf;
      rows;
      cols;
      root;
      reply_s = rs;
      reply_r = rr;
      reply_parity = dst_par;
    }

(* ------------------------------------------------------------------ *)
(* Tree assembly                                                        *)
(* ------------------------------------------------------------------ *)

let ext name comm = { Tree.ext_name = name; comm }
let f ?preds stmts = Tree.filter ?preds stmts
let fleaf name = (f [ name ], Tree.leaf)

(* Iterator-level predicates used by loop peeling (§6.2). *)
let ko_of_k g = fd (v "k") g.tiles.Tile_model.panel_k
let l_of_k g =
  Aff.sub (fd (v "k") g.tiles.Tile_model.tk)
    (g.tiles.Tile_model.panel_chunks *: fd (v "k") g.tiles.Tile_model.panel_k)

(* The point band wrapped in the micro-kernel mark (§7.2). *)
let point_subtree (point_band : Tree.band) ~mark_name =
  Tree.mark mark_name (Tree.Band (point_band, Tree.leaf))

(* The RMA-pipelined inner subtree for one outer iteration [ko] (always the
   loop variable "ko" of the enclosing branch band). [suffix] keeps the
   auxiliary statement names of the two replicated instances distinct
   (DMA-SUBTREE / RMA-SUBTREE replication in Fig. 11); [prefetch] appends
   the waits for the next DMA panel at the last inner step. *)
let inner_pipeline g ~(l_band : Tree.band) ~point_band ~suffix ~prefetch =
  let p = g.tiles.Tile_model.panel_chunks in
  let dma_par e = if g.opts.Options.hiding then Some (fm e 2) else None in
  let src_par = dma_par (v "ko") in
  let mark_name = "micro_kernel:pipe" in
  if not g.opts.Options.hiding then
    (* §5 without §6: broadcast then compute, fully sequential. *)
    let n s = s ^ suffix in
    Tree.Band
      ( l_band,
        Tree.extension
          [
            ext (n "sync") Comm.Sync;
            ext (n "rbA") (rma g ~dir:`Row ~root:(v "tkt") ~src_par:None ~dst_par:None);
            ext (n "cbB") (rma g ~dir:`Col ~root:(v "tkt") ~src_par:None ~dst_par:None);
            ext (n "wAs") (wait "rAs" None);
            ext (n "wAr") (wait "rAr" None);
            ext (n "wBs") (wait "rBs" None);
            ext (n "wBr") (wait "rBr" None);
          ]
          (Tree.sequence
             [
               fleaf (n "sync");
               fleaf (n "rbA");
               fleaf (n "cbB");
               fleaf (n "wAs");
               fleaf (n "wAr");
               fleaf (n "wBs");
               fleaf (n "wBr");
               (f [ "S1" ], point_subtree point_band ~mark_name:"micro_kernel:rma0");
             ]) )
  else
    let n s = s ^ suffix in
    let next = v "tkt" +: c 1 in
    let next_par = Some (fm next 2) in
    let prologue =
      (* l = 0: broadcast the first chunk and wait for it (the x=0 row of
         Fig. 11, issue and reply scheduled together). *)
      ( f
          ~preds:[ Pred.eq (l_of_k g) (c 0) ]
          [ "S1" ],
        Tree.Band
          ( l_band,
            Tree.extension
              [
                ext (n "sync0") Comm.Sync;
                ext (n "rbA0")
                  (rma g ~dir:`Row ~root:(v "tkt") ~src_par
                     ~dst_par:(Some (fm (v "tkt") 2)));
                ext (n "cbB0")
                  (rma g ~dir:`Col ~root:(v "tkt") ~src_par
                     ~dst_par:(Some (fm (v "tkt") 2)));
                ext (n "wAs0") (wait "rAs" (Some (fm (v "tkt") 2)));
                ext (n "wAr0") (wait "rAr" (Some (fm (v "tkt") 2)));
                ext (n "wBs0") (wait "rBs" (Some (fm (v "tkt") 2)));
                ext (n "wBr0") (wait "rBr" (Some (fm (v "tkt") 2)));
              ]
              (Tree.sequence
                 [
                   fleaf (n "sync0");
                   fleaf (n "rbA0");
                   fleaf (n "cbB0");
                   fleaf (n "wAs0");
                   fleaf (n "wAr0");
                   fleaf (n "wBs0");
                   fleaf (n "wBr0");
                 ]) ) )
    in
    let steady =
      (* 0 <= l <= P-2: issue the broadcast of l+1, compute l, then wait for
         l+1's replies (reply indicators separated by peeling, §6.2). *)
      ( f
          ~preds:[ Pred.le (l_of_k g) (c (p - 2)) ]
          [ "S1" ],
        Tree.Band
          ( l_band,
            Tree.extension
              [
                ext (n "syncN") Comm.Sync;
                ext (n "rbAN") (rma g ~dir:`Row ~root:next ~src_par ~dst_par:next_par);
                ext (n "cbBN") (rma g ~dir:`Col ~root:next ~src_par ~dst_par:next_par);
                ext (n "wAsN") (wait "rAs" next_par);
                ext (n "wArN") (wait "rAr" next_par);
                ext (n "wBsN") (wait "rBs" next_par);
                ext (n "wBrN") (wait "rBr" next_par);
              ]
              (Tree.sequence
                 [
                   fleaf (n "syncN");
                   fleaf (n "rbAN");
                   fleaf (n "cbBN");
                   (f [ "S1" ], point_subtree point_band ~mark_name);
                   fleaf (n "wAsN");
                   fleaf (n "wArN");
                   fleaf (n "wBsN");
                   fleaf (n "wBrN");
                 ]) ) )
    in
    let last =
      (* l = P-1: compute only; when a DMA prefetch for ko+1 is in flight,
         its reply indicators land here (the "l = 7" filter of Fig. 11). *)
      let dma_next_par = dma_par (v "ko" +: c 1) in
      let waits =
        if prefetch then
          [ ext (n "wDA") (wait "rA" dma_next_par); ext (n "wDB") (wait "rB" dma_next_par) ]
        else []
      in
      ( f
          ~preds:[ Pred.ge (l_of_k g) (c (p - 1)) ]
          [ "S1" ],
        Tree.Band
          ( l_band,
            Tree.extension waits
              (Tree.sequence
                 ((f [ "S1" ], point_subtree point_band ~mark_name)
                 :: (if prefetch then [ fleaf (n "wDA"); fleaf (n "wDB") ] else [])
                 )) ) )
    in
    Tree.sequence [ prologue; steady; last ]

(* ------------------------------------------------------------------ *)
(* Chain builders: the three shapes of the reduced-dimension subtree.    *)
(* ------------------------------------------------------------------ *)

(* §4 only: per k-step DMA of this CPE's own A and B tiles. The share
   index along k is the plain reduced tile loop. *)
let chain_simple g ~(red_band : Tree.band) ~point_band =
  Tree.Band
    ( red_band,
      Tree.extension
        [
          ext "getA" (dma_a g ~ko_expr:(c 0) ~chunk:(v "tkt") ~par:None);
          ext "getB" (dma_b g ~ko_expr:(c 0) ~chunk:(v "tkt") ~par:None);
          ext "wA" (wait "rA" None);
          ext "wB" (wait "rB" None);
        ]
        (Tree.sequence
           [
             fleaf "getA";
             fleaf "getB";
             fleaf "wA";
             fleaf "wB";
             (f [ "S1" ], point_subtree point_band ~mark_name:"micro_kernel:simple");
           ]) )

(* §4 under the RMA decomposition, before §5 runs: DMA the panel share
   owned by this CPE; the inner compute still reads the local (not yet
   broadcast) tiles. The rma_broadcast pass rewrites the inner subtree. *)
let chain_dma_panel g ~(ko_band : Tree.band) ~(l_band : Tree.band) ~point_band =
  Tree.Band
    ( ko_band,
      Tree.extension
        [
          ext "getA" (dma_a g ~ko_expr:(v "ko") ~chunk:(a_chunk g) ~par:None);
          ext "getB" (dma_b g ~ko_expr:(v "ko") ~chunk:(b_chunk g) ~par:None);
          ext "wA" (wait "rA" None);
          ext "wB" (wait "rB" None);
        ]
        (Tree.sequence
           [
             fleaf "getA";
             fleaf "getB";
             fleaf "wA";
             fleaf "wB";
             ( f [ "S1" ],
               Tree.Band
                 (l_band, point_subtree point_band ~mark_name:"micro_kernel:local")
             );
           ]) )

(* §5 without §6: DMA the panel share, then broadcast sequentially. The
   hiding flag is forced off so the dumped intermediate tree shows the
   sequential stage even when pipeline_hiding will rewrite it next. *)
let chain_rma_sequential g ~(ko_band : Tree.band) ~(l_band : Tree.band)
    ~point_band =
  let g = { g with opts = { g.opts with Options.hiding = false } } in
  Tree.Band
    ( ko_band,
      Tree.extension
        [
          ext "getA" (dma_a g ~ko_expr:(v "ko") ~chunk:(a_chunk g) ~par:None);
          ext "getB" (dma_b g ~ko_expr:(v "ko") ~chunk:(b_chunk g) ~par:None);
          ext "wA" (wait "rA" None);
          ext "wB" (wait "rB" None);
        ]
        (Tree.sequence
           [
             fleaf "getA";
             fleaf "getB";
             fleaf "wA";
             fleaf "wB";
             ( f [ "S1" ],
               inner_pipeline g ~l_band ~point_band ~suffix:"" ~prefetch:false
             );
           ]) )

(* §6: two-level software pipeline (Fig. 11). *)
let chain_pipelined g ~(ko_band : Tree.band) ~(l_band : Tree.band) ~point_band =
  let par e = Some (fm e 2) in
  let prologue =
    ( f ~preds:[ Pred.eq (ko_of_k g) (c 0) ] [ "S1" ],
      Tree.Band
        ( ko_band,
          Tree.extension
            [
              ext "getA0" (dma_a g ~ko_expr:(v "ko") ~chunk:(a_chunk g) ~par:(par (v "ko")));
              ext "getB0" (dma_b g ~ko_expr:(v "ko") ~chunk:(b_chunk g) ~par:(par (v "ko")));
              ext "wA0" (wait "rA" (par (v "ko")));
              ext "wB0" (wait "rB" (par (v "ko")));
            ]
            (Tree.sequence
               [ fleaf "getA0"; fleaf "getB0"; fleaf "wA0"; fleaf "wB0" ]) ) )
  in
  let steady =
    ( f
        ~preds:[ Pred.le (ko_of_k g) (c (g.tiles.Tile_model.nko - 2)) ]
        [ "S1" ],
      Tree.Band
        ( ko_band,
          Tree.extension
            [
              ext "getAN"
                (dma_a g ~ko_expr:(v "ko" +: c 1) ~chunk:(a_chunk g)
                   ~par:(par (v "ko" +: c 1)));
              ext "getBN"
                (dma_b g ~ko_expr:(v "ko" +: c 1) ~chunk:(b_chunk g)
                   ~par:(par (v "ko" +: c 1)));
            ]
            (Tree.sequence
               [
                 fleaf "getAN";
                 fleaf "getBN";
                 ( f [ "S1" ],
                   inner_pipeline g ~l_band ~point_band ~suffix:"s"
                     ~prefetch:true );
               ]) ) )
  in
  let last =
    ( f
        ~preds:[ Pred.ge (ko_of_k g) (c (g.tiles.Tile_model.nko - 1)) ]
        [ "S1" ],
      Tree.Band
        ( ko_band,
          inner_pipeline g ~l_band ~point_band ~suffix:"t" ~prefetch:false
        ) )
  in
  Tree.sequence [ prologue; steady; last ]

(* ------------------------------------------------------------------ *)
(* Snapshot: partial pipeline state -> schedule tree                     *)
(* ------------------------------------------------------------------ *)

(* The C-tile region: get/scale, the reduced chain, act/put (Fig. 9). The
   epilogue extension appears only once the fusion pass has copied the
   spec's fusion request into the state. *)
let c_region (st : Pass.state) chain =
  let g = geom_of st in
  let tiles = st.Pass.tiles in
  let spec = st.Pass.spec in
  let c_exts =
    [ ext "getC" (dma_c g ~put:false); ext "wCg" (wait "rCg" None) ]
    @ (if spec.Spec.beta <> 1.0 then
         [
           ext "scaleC"
             (Comm.Spm_map
                {
                  target = Comm.buf buf_c;
                  rows = tiles.Tile_model.tm;
                  cols = tiles.Tile_model.tn;
                  fn = Printf.sprintf "scale:%.17g" spec.Spec.beta;
                });
         ]
       else [])
    @ (match st.Pass.fusion with
      | Spec.Epilogue fn ->
          [
            ext "actC"
              (Comm.Spm_map
                 {
                   target = Comm.buf buf_c;
                   rows = tiles.Tile_model.tm;
                   cols = tiles.Tile_model.tn;
                   fn;
                 });
          ]
      | Spec.No_fusion | Spec.Prologue _ -> [])
    @ [ ext "putC" (dma_c g ~put:true); ext "wCp" (wait "rCp" None) ]
  in
  Tree.extension c_exts
    (Tree.sequence
       ([ fleaf "getC"; fleaf "wCg" ]
       @ (if spec.Spec.beta <> 1.0 then
            [ fleaf "scaleC" ]
          else [])
       @ [ (f [ "S1" ], chain) ]
       @ (match st.Pass.fusion with
         | Spec.Epilogue _ -> [ fleaf "actC" ]
         | Spec.No_fusion | Spec.Prologue _ -> [])
       @ [ fleaf "putC"; fleaf "wCp" ]))

(* Render the partial state as a schedule tree: the compute decomposition
   so far with a bare micro-kernel mark while communication has not been
   inserted, the full C-tile region once it has. *)
let snapshot (st : Pass.state) =
  match st.Pass.stmt with
  | None -> None
  | Some stmt ->
      let core =
        match st.Pass.chain with
        | Some chain -> Some (c_region st chain)
        | None -> (
            match st.Pass.point_band with
            | None -> None
            | Some point_band ->
                let inner = point_subtree point_band ~mark_name:"micro_kernel" in
                let kpart =
                  match (st.Pass.ko_band, st.Pass.l_band) with
                  | Some ko, Some l -> Tree.Band (ko, Tree.Band (l, inner))
                  | _ -> (
                      match st.Pass.red_band with
                      | Some red -> Tree.Band (red, inner)
                      | None -> inner)
                in
                Some kpart)
      in
      (match core with
      | None -> None
      | Some core ->
          let body =
            match (st.Pass.block_band, st.Pass.coord_band) with
            | Some block, Some coord -> Tree.Band (block, Tree.Band (coord, core))
            | _ -> (
                match st.Pass.par_band with
                | Some par -> Tree.Band (par, core)
                | None -> core)
          in
          let body =
            match st.Pass.batch_band with
            | Some b -> Tree.Band (b, body)
            | None -> body
          in
          Some (Tree.domain [ stmt ] body))

let finalize st = { st with Pass.tree = snapshot st }

(* ------------------------------------------------------------------ *)
(* Mark expansion (§7.2, §7.3)                                          *)
(* ------------------------------------------------------------------ *)

let marks (st : Pass.state) name =
  let spec = st.Pass.spec in
  let opts = st.Pass.options in
  let tiles = st.Pass.tiles in
  let style = if opts.Options.use_asm then Comm.Asm else Comm.Naive in
  let kernel ~a ~b =
    Comm.Kernel
      {
        Comm.c = Comm.buf buf_c;
        a;
        b;
        m = tiles.Tile_model.tm;
        n = tiles.Tile_model.tn;
        k = tiles.Tile_model.tk;
        alpha = spec.Spec.alpha;
        accumulate = true;
        ta = spec.Spec.ta;
        tb = spec.Spec.tb;
        style;
      }
  in
  let a_rows, a_cols = a_tile_shape spec tiles in
  let with_prologue ~a block =
    match st.Pass.fusion with
    | Spec.Prologue fn ->
        Sw_ast.Ast.Op
          (Comm.Spm_map
             { target = a; rows = a_rows; cols = a_cols; fn })
        :: block
    | Spec.No_fusion | Spec.Epilogue _ -> block
  in
  match name with
  | "micro_kernel:simple" | "micro_kernel:local" ->
      let a = Comm.buf buf_a and b = Comm.buf buf_b in
      Some (with_prologue ~a [ Sw_ast.Ast.Op (kernel ~a ~b) ])
  | "micro_kernel:rma0" ->
      let a = Comm.buf buf_bca and b = Comm.buf buf_bcb in
      Some (with_prologue ~a [ Sw_ast.Ast.Op (kernel ~a ~b) ])
  | "micro_kernel:pipe" ->
      let par = Aff.fmod (Aff.var "tkt") 2 in
      let a = Comm.buf ~parity:par buf_bca and b = Comm.buf ~parity:par buf_bcb in
      Some (with_prologue ~a [ Sw_ast.Ast.Op (kernel ~a ~b) ])
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Invariant hook (debug mode)                                          *)
(* ------------------------------------------------------------------ *)

let invariant_buffers (st : Pass.state) =
  List.map
    (fun (d : Sw_ast.Ast.spm_decl) ->
      {
        Invariant.buf = d.Sw_ast.Ast.buf_name;
        rows = d.Sw_ast.Ast.rows;
        cols = d.Sw_ast.Ast.cols;
        copies = d.Sw_ast.Ast.copies;
      })
    (spm_decls st.Pass.spec st.Pass.options st.Pass.tiles)

let check_invariants (st : Pass.state) =
  match st.Pass.tree with
  | None -> Ok ()
  | Some tree ->
      Invariant.check
        ~buffers:(invariant_buffers st)
        ~replies:(replies st.Pass.options)
        ~spm_capacity:st.Pass.config.Sw_arch.Config.spm_bytes tree
