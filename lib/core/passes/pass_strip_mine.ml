(* Fig. 6: strip-mine the reduced tile loop by the panel chunk count
   (min of mesh rows and cols), producing the panel loop [ko] and keeping
   [tkt] as the within-panel chunk index owned by one mesh column. Only
   meaningful when the RMA decomposition is on — without it the reduced
   band feeds the per-CPE DMA chain directly. *)

open Sw_tree

let run (st : Pass.state) =
  let tiles = st.Pass.tiles in
  let red_band = Pass.component st (fun s -> s.Pass.red_band) "reduced band" in
  (* the factor MUST be the panel chunk count; the off-by-one under
     sabotage is the planted bug the conformance fuzzer is expected to
     catch *)
  let factor =
    if Pass.sabotaged "strip_mine" then tiles.Tile_model.panel_chunks + 1
    else tiles.Tile_model.panel_chunks
  in
  let ko_band, l_band =
    Transform.strip_mine red_band ~var:"tkt" ~factor ~outer:"ko"
  in
  Pass_common.finalize
    {
      st with
      Pass.red_band = None;
      ko_band = Some ko_band;
      l_band = Some l_band;
    }

let pass =
  {
    Pass.name = "strip_mine";
    section = "3.2";
    descr = "strip-mine the reduced loop by the panel chunk count";
    required = false;
    relevant = (fun st -> st.Pass.options.Options.use_rma);
    run;
  }
