(* The canonical pipeline, in paper order. The explicit list (rather than
   per-module registration side effects) guarantees the pass modules are
   linked from the library archive and fixes the order once. *)

let pipeline =
  [
    Pass_tile.pass;
    Pass_mesh_bind.pass;
    Pass_strip_mine.pass;
    Pass_dma.pass;
    Pass_rma.pass;
    Pass_hiding.pass;
    Pass_fusion.pass;
    Pass_astgen.pass;
  ]

let () = List.iter Pass.register pipeline

let names = List.map (fun p -> p.Pass.name) pipeline
