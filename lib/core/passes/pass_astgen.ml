(* §7.1–7.2: lower the final schedule tree to the athread AST, expanding
   the micro-kernel marks to kernel calls (with the fused prologue when
   requested). *)

let run (st : Pass.state) =
  let tree = Pass.component st (fun s -> s.Pass.tree) "schedule tree" in
  let config = st.Pass.config in
  match
    Sw_ast.Codegen.generate_checked
      ~marks:(Pass_common.marks st)
      ~mesh:(config.Sw_arch.Config.mesh_rows, config.Sw_arch.Config.mesh_cols)
      tree
  with
  | Ok body -> { st with Pass.body = Some body }
  | Error e -> Pass.fail "code generation: %s" e

let pass =
  {
    Pass.name = "astgen";
    section = "7";
    descr = "schedule tree to athread AST with micro-kernel marks";
    required = true;
    relevant = (fun _ -> true);
    run;
  }
