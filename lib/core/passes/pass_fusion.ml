(* §7.3: operator fusion. Copies the spec's fusion request into the
   pipeline state: an epilogue activation becomes an SPM map over the C
   tile before the put-back (added by the C-region assembly), a prologue
   becomes an SPM map over the A tile inside the micro-kernel mark
   expansion. Disabling this pass compiles the unfused kernel. *)

let run (st : Pass.state) =
  Pass_common.finalize { st with Pass.fusion = st.Pass.spec.Spec.fusion }

let pass =
  {
    Pass.name = "fusion";
    section = "7.3";
    descr = "fuse prologue/epilogue element-wise operators";
    required = false;
    relevant = (fun st -> st.Pass.spec.Spec.fusion <> Spec.No_fusion);
    run;
  }
