(* §3.1 (Figs 2–4a): build the initial schedule tree of the (batched) GEMM
   loop nest, isolate the batch dimension, tile to the micro-kernel shape
   and split the tile band into its parallel (ti, tj) and reduced (tkt)
   parts. *)

open Sw_tree

let run (st : Pass.state) =
  let spec = st.Pass.spec in
  let tiles = st.Pass.tiles in
  let stmt = Pass_common.gemm_stmt spec in
  let initial = Tree.initial [ stmt ] in
  let band0 =
    match initial with
    | Tree.Domain (_, Tree.Band (b, Tree.Leaf)) -> b
    | _ -> Pass.fail "unexpected initial schedule tree shape"
  in
  (* Fig. 3: isolate the batch dimension. *)
  let batch_band, gemm_band =
    if spec.Spec.batch <> None then
      let b, rest = Transform.split_off band0 ~var:"b" in
      (Some b, rest)
    else (None, band0)
  in
  (* Fig. 4a: tile to the micro-kernel shape configuration. *)
  let tile_band, point_band =
    Transform.tile gemm_band
      ~sizes:[ tiles.Tile_model.tm; tiles.Tile_model.tn; tiles.Tile_model.tk ]
      ~names:[ "ti"; "tj"; "tkt" ]
  in
  let par_band, red_band = Transform.split tile_band ~at:2 in
  Pass_common.finalize
    {
      st with
      Pass.stmt = Some stmt;
      batch_band;
      par_band = Some par_band;
      red_band = Some red_band;
      point_band = Some point_band;
    }

let pass =
  {
    Pass.name = "tile";
    section = "3.1";
    descr = "initial tree, batch split, micro-kernel tiling";
    required = true;
    relevant = (fun _ -> true);
    run;
  }
