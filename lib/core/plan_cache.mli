(** Compilation plan cache — sharded and domain-safe.

    Compiling a spec is deterministic in (spec, options, machine model), so
    repeated compilations — the autotuner sweeping shapes, a batched
    workload re-emitting the same kernel, the breakdown study — can reuse
    the finished plan. The cache is a bounded FIFO keyed by a digest of the
    three inputs; {!Compile.run} consults the one in its session.

    The cache may be shared across domains: keys hash onto [shards]
    independent mutex-protected shards, producers run outside the lock,
    and a produce already in flight is joined rather than duplicated — two
    domains racing on one key yield one miss and one hit, exactly like two
    sequential calls. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; entries : int }
(** When an ambient {!Sw_obs.Metrics} registry is installed, every hit,
    miss and FIFO eviction also bumps [plan_cache.hits_total] /
    [plan_cache.misses_total] / [plan_cache.evictions_total]. *)

val create : ?capacity:int -> ?shards:int -> unit -> 'a t
(** FIFO-evicting cache holding at most [capacity] (default 64) plans,
    hashed over [shards] (default 1) independent shards of
    [capacity/shards] entries each. With the default single shard the
    eviction order is the historical global FIFO; with more shards each
    shard evicts its own oldest entry, which trades exact FIFO order for
    less lock contention. Raises [Invalid_argument] when [capacity <= 0]
    or [shards <= 0]. *)

val key : spec:Spec.t -> options:Options.t -> config:Sw_arch.Config.t -> string
(** Digest of the marshalled (spec, options, config) triple. Any change to
    the requested problem, the enabled optimizations or the machine model
    produces a different key. *)

val find_or_add : 'a t -> key:string -> (unit -> 'a) -> 'a
(** Return the cached plan for [key], or run the producer, cache its
    result (evicting the shard's oldest entry when full) and return it.
    A concurrent caller of the same key blocks until the in-flight
    producer settles and then takes a hit. A producer that raises caches
    nothing; its exception propagates to the producing caller and one of
    the waiters retakes the produce. *)

val add : 'a t -> key:string -> 'a -> bool
(** Insert [key] if absent (evicting the shard's oldest entry when full),
    counting as neither hit nor miss. [false] when the key is already
    present or in flight. The warm-start path: plans decoded from the
    durable store are preloaded without skewing traffic counters. *)

val mem : 'a t -> string -> bool
val clear : 'a t -> unit
val stats : 'a t -> stats
