(** Compilation plan cache.

    Compiling a spec is deterministic in (spec, options, machine model), so
    repeated compilations — the autotuner sweeping shapes, a batched
    workload re-emitting the same kernel, the breakdown study — can reuse
    the finished plan. The cache is a bounded FIFO keyed by a digest of the
    three inputs; {!Compile.compile} consults it when given one. *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; entries : int }
(** When an ambient {!Sw_obs.Metrics} registry is installed, every hit,
    miss and FIFO eviction also bumps [plan_cache.hits_total] /
    [plan_cache.misses_total] / [plan_cache.evictions_total]. *)

val create : ?capacity:int -> unit -> 'a t
(** FIFO-evicting cache holding at most [capacity] (default 64) plans.
    Raises [Invalid_argument] when [capacity <= 0]. *)

val key : spec:Spec.t -> options:Options.t -> config:Sw_arch.Config.t -> string
(** Digest of the marshalled (spec, options, config) triple. Any change to
    the requested problem, the enabled optimizations or the machine model
    produces a different key. *)

val find_or_add : 'a t -> key:string -> (unit -> 'a) -> 'a
(** Return the cached plan for [key], or run the producer, cache its
    result (evicting the oldest entry when full) and return it. A producer
    that raises caches nothing. *)

val mem : 'a t -> string -> bool
val clear : 'a t -> unit
val stats : 'a t -> stats
