(* User-facing constructor and helpers for Compile.session. The record
   itself lives in Compile so Compile.run/run_result can take it without a
   module cycle; this module is the one callers name. *)

type t = Compile.session = {
  config : Sw_arch.Config.t;
  options : Options.t;
  debug : bool;
  cache : Compile.t Plan_cache.t option;
  observer : (Pass.t -> Pass.state -> unit) option;
  registry : Sw_obs.Metrics.registry option;
  store : Sw_host.Store.t option;
  supervisor : Sw_host.Supervise.t option;
  deadline_s : float option;
}

let create ?(options = Options.all_on) ?(debug = false) ?cache ?observer
    ?registry ?store ?supervisor ?deadline_s ~config () =
  {
    config;
    options;
    debug;
    cache;
    observer;
    registry;
    store;
    supervisor;
    deadline_s;
  }

let one_shot ?options ?debug ~config () = create ?options ?debug ~config ()

let cached ?options ?debug ?(capacity = 64) ?(shards = 8) ?registry ?store
    ?supervisor ?deadline_s ~config () =
  create ?options ?debug
    ~cache:(Plan_cache.create ~capacity ~shards ())
    ?registry ?store ?supervisor ?deadline_s ~config ()

let durable ?options ?debug ?capacity ?shards ?registry ?budget_bytes
    ?supervisor ?deadline_s ~dir ~config () =
  let store =
    Sw_host.Store.open_ ?budget_bytes ~schema:Compile.store_schema ~dir ()
  in
  cached ?options ?debug ?capacity ?shards ?registry ~store ?supervisor
    ?deadline_s ~config ()

let with_options t options = { t with options }
let with_config t config = { t with config }
let with_debug t debug = { t with debug }
let with_deadline t deadline_s = { t with deadline_s }

let run = Compile.run
let run_result = Compile.run_result
let warm_start = Compile.warm_start

let cache_stats t = Option.map Plan_cache.stats t.cache
let store_stats t = Option.map Sw_host.Store.stats t.store
