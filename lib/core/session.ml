(* User-facing builder for Compile.session. The record itself lives in
   Compile so Compile.run can take it without a module cycle; this module
   is the one callers name. *)

type t = Compile.session = {
  config : Sw_arch.Config.t;
  options : Options.t;
  debug : bool;
  cache : Compile.t Plan_cache.t option;
  observer : (Pass.t -> Pass.state -> unit) option;
  registry : Sw_obs.Metrics.registry option;
  store : Sw_host.Store.t option;
  supervisor : Sw_host.Supervise.t option;
  deadline_s : float option;
  jobs : int;
  tuned : (Spec.t -> (Sw_arch.Config.t * Options.t) option) option;
}

let create ?(options = Options.all_on) ?(debug = false) ?cache
    ?(no_cache = false) ?(capacity = 64) ?(shards = 8) ?observer ?registry
    ?store ?store_dir ?budget_bytes ?supervisor ?deadline ?(jobs = 1) ?tuned
    ~arch () =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Session.create: jobs = %d (need >= 1)" jobs);
  let store =
    match (store, store_dir) with
    | Some _, Some _ ->
        invalid_arg "Session.create: give ~store or ~store_dir, not both"
    | (Some _ as st), None -> st
    | None, Some dir ->
        Some
          (Sw_host.Store.open_ ?budget_bytes ~schema:Compile.store_schema ~dir
             ())
    | None, None -> None
  in
  let cache =
    match cache with
    | Some _ as c -> c
    | None ->
        if no_cache then None else Some (Plan_cache.create ~capacity ~shards ())
  in
  {
    config = arch;
    options;
    debug;
    cache;
    observer;
    registry;
    store;
    supervisor;
    deadline_s = deadline;
    jobs;
    tuned;
  }

let with_options t options = { t with options }
let with_arch t arch = { t with config = arch }
let with_debug t debug = { t with debug }
let with_deadline t deadline_s = { t with deadline_s }

let run = Compile.run
let run_exn = Compile.run_exn
let warm_start = Compile.warm_start

let cache_stats t = Option.map Plan_cache.stats t.cache
let store_stats t = Option.map Sw_host.Store.stats t.store
