(* User-facing constructor and helpers for Compile.session. The record
   itself lives in Compile so Compile.run/run_result can take it without a
   module cycle; this module is the one callers name. *)

type t = Compile.session = {
  config : Sw_arch.Config.t;
  options : Options.t;
  debug : bool;
  cache : Compile.t Plan_cache.t option;
  observer : (Pass.t -> Pass.state -> unit) option;
  registry : Sw_obs.Metrics.registry option;
}

let create ?(options = Options.all_on) ?(debug = false) ?cache ?observer
    ?registry ~config () =
  { config; options; debug; cache; observer; registry }

let one_shot ?options ?debug ~config () = create ?options ?debug ~config ()

let cached ?options ?debug ?(capacity = 64) ?(shards = 8) ?registry ~config () =
  create ?options ?debug
    ~cache:(Plan_cache.create ~capacity ~shards ())
    ?registry ~config ()

let with_options t options = { t with options }
let with_config t config = { t with config }
let with_debug t debug = { t with debug }

let run = Compile.run
let run_result = Compile.run_result

let cache_stats t = Option.map Plan_cache.stats t.cache
