open Sw_arch
open Sw_blas

type perf = { seconds : float; gflops : float; exact : bool }

type error =
  | Sim of Error.t
  | Mismatch of { batch : int; diff : float; scale : float; spec : string }

let error_to_string = function
  | Sim e -> Error.to_string e
  | Mismatch { batch; diff; scale; spec } ->
      Printf.sprintf
        "batch %d: max |difference| %.3e exceeds tolerance (scale %.3e) for %s"
        batch diff scale spec

exception Runner_error of error

let () =
  Printexc.register_printer (function
    | Runner_error e -> Some ("Runner_error: " ^ error_to_string e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Functional verification                                             *)
(* ------------------------------------------------------------------ *)

let batch_count (spec : Spec.t) =
  match spec.Spec.batch with Some b -> b | None -> 1

(* Allocate and randomly initialize main memory for a compiled program,
   returning per-batch input matrices for the reference computation. *)
let setup_memory (compiled : Compile.t) ~seed =
  let spec = compiled.Compile.spec in
  let nb = batch_count spec in
  let mk_batch name rows cols =
    Array.init nb (fun b -> Matrix.random ~rows ~cols ~seed:(seed + (31 * b) + Hashtbl.hash name))
  in
  let a_rows, a_cols =
    if spec.Spec.ta then (spec.Spec.k, spec.Spec.m) else (spec.Spec.m, spec.Spec.k)
  in
  let b_rows, b_cols =
    if spec.Spec.tb then (spec.Spec.n, spec.Spec.k) else (spec.Spec.k, spec.Spec.n)
  in
  let a = mk_batch "A" a_rows a_cols in
  let b = mk_batch "B" b_rows b_cols in
  let c = mk_batch "C" spec.Spec.m spec.Spec.n in
  let mem = Mem.create () in
  let install name (mats : Matrix.t array) rows cols =
    let dims =
      if spec.Spec.batch = None then [ rows; cols ] else [ nb; rows; cols ]
    in
    Mem.alloc_init mem name ~dims ~f:(fun idx ->
        match idx with
        | [| r; cc |] -> Matrix.get mats.(0) r cc
        | [| bi; r; cc |] -> Matrix.get mats.(bi) r cc
        | _ -> assert false)
  in
  install "A" a a_rows a_cols;
  install "B" b b_rows b_cols;
  install "C" c spec.Spec.m spec.Spec.n;
  (mem, a, b, c)

let reference (spec : Spec.t) ~a ~b ~c =
  let alpha = spec.Spec.alpha and beta = spec.Spec.beta in
  (* normalize stored operands to their logical orientation: element-wise
     prologues commute with transposition *)
  let a = if spec.Spec.ta then Array.map Matrix.transpose a else a in
  let b = if spec.Spec.tb then Array.map Matrix.transpose b else b in
  Array.iteri
    (fun i (ai : Matrix.t) ->
      match spec.Spec.fusion with
      | Spec.No_fusion -> Dgemm.gemm ~alpha ~beta ~a:ai ~b:b.(i) ~c:c.(i)
      | Spec.Prologue fn ->
          Dgemm.fused_prologue ~fn ~alpha ~beta ~a:ai ~b:b.(i) ~c:c.(i)
      | Spec.Epilogue fn ->
          Dgemm.fused_epilogue ~fn ~alpha ~beta ~a:ai ~b:b.(i) ~c:c.(i))
    a

let extract_c (compiled : Compile.t) mem =
  let spec = compiled.Compile.spec in
  let nb = batch_count spec in
  let data = Mem.data mem "C" in
  Array.init nb (fun bi ->
      Matrix.init ~rows:spec.Spec.m ~cols:spec.Spec.n ~f:(fun r cc ->
          data.((bi * spec.Spec.m * spec.Spec.n) + (r * spec.Spec.n) + cc)))

(* Compare the simulated C against the reference; reports the FIRST
   mismatching batch (the diff/scale pair pinpoints it). *)
let compare_result (compiled : Compile.t) ~tol ~cref mem =
  let spec = compiled.Compile.spec in
  let got = extract_c compiled mem in
  let rec check bi =
    if bi >= Array.length cref then Ok ()
    else
      let diff = Matrix.max_abs_diff cref.(bi) got.(bi) in
      let scale =
        Array.fold_left
          (fun acc x -> Float.max acc (abs_float x))
          1.0 cref.(bi).Matrix.data
      in
      if diff > tol *. scale then
        Error
          (Mismatch { batch = bi; diff; scale; spec = Spec.to_string spec })
      else check (bi + 1)
  in
  check 0

let verify ?(seed = 42) ?(tol = 1e-9) (compiled : Compile.t) =
  let mem, a, b, c = setup_memory compiled ~seed in
  match
    Interp.run ~config:compiled.Compile.config ~functional:true ~mem
      compiled.Compile.program
  with
  | exception Error.Sim_error e -> Error (Sim e)
  | result ->
      if result.Interp.races <> [] then
        (* every race, sorted by CPE then buffer — not just the first *)
        Error (Sim (Error.Race result.Interp.races))
      else begin
        (* reference runs on copies of the original inputs *)
        let cref = Array.map Matrix.copy c in
        reference compiled.Compile.spec ~a ~b ~c:cref;
        compare_result compiled ~tol ~cref mem
      end

(* ------------------------------------------------------------------ *)
(* Resilient execution (fault injection + recovery)                    *)
(* ------------------------------------------------------------------ *)

type recovery =
  | No_recovery
  | Retried of int
  | Mpe_fallback of { reason : string }

let recovery_to_string = function
  | No_recovery -> "clean"
  | Retried n -> Printf.sprintf "recovered after %d retried wait(s)" n
  | Mpe_fallback { reason } -> "MPE fallback: " ^ reason

type resilient = { seconds : float; recovery : recovery }

(* Cost of abandoning the mesh and redoing the whole (batched) problem on
   the management core, charged on top of the simulated time already spent
   when recovery gave up. *)
let mpe_fallback_seconds (compiled : Compile.t) ~at =
  let spec = compiled.Compile.spec in
  let per_batch =
    Config.mpe_gemm_seconds compiled.Compile.config ~m:spec.Spec.m
      ~n:spec.Spec.n ~k:spec.Spec.k
  in
  at +. (float_of_int (batch_count spec) *. per_batch)

let verify_resilient ?(seed = 42) ?(tol = 1e-9) ?faults
    ?(retry = Interp.default_retry) ?watchdog ?trace (compiled : Compile.t) =
  let mem, a, b, c = setup_memory compiled ~seed in
  let cref = Array.map Matrix.copy c in
  reference compiled.Compile.spec ~a ~b ~c:cref;
  match
    Interp.run ?trace ?faults ?watchdog ~retry ~config:compiled.Compile.config
      ~functional:true ~mem compiled.Compile.program
  with
  | exception Error.Sim_error (Error.Fault_exhausted f) ->
      (* graceful degradation: the mesh-side run is abandoned and the whole
         problem re-runs on the MPE, whose result is the reference by
         construction — correct, just slow *)
      Sw_obs.Metrics.incr_a "runner.mpe_fallbacks_total";
      Ok
        {
          seconds = mpe_fallback_seconds compiled ~at:f.sim_time;
          recovery =
            Mpe_fallback { reason = Error.to_string (Error.Fault_exhausted f) };
        }
  | exception Error.Sim_error e -> Error (Sim e)
  | result ->
      if result.Interp.races <> [] then
        Error (Sim (Error.Race result.Interp.races))
      else begin
        match compare_result compiled ~tol ~cref mem with
        | Error _ as e -> e
        | Ok () ->
            Ok
              {
                seconds = result.Interp.seconds;
                recovery =
                  (if result.Interp.retries > 0 then
                     Retried result.Interp.retries
                   else No_recovery);
              }
      end

(* ------------------------------------------------------------------ *)
(* Timing                                                               *)
(* ------------------------------------------------------------------ *)

let timing_memory (compiled : Compile.t) =
  (* timing-only runs never touch data, but arrays must exist for bounds
     checking of the DMA offsets *)
  let mem = Mem.create () in
  List.iter
    (fun (d : Sw_ast.Ast.array_decl) ->
      Mem.alloc mem d.Sw_ast.Ast.array_name ~dims:d.Sw_ast.Ast.dims)
    compiled.Compile.program.Sw_ast.Ast.arrays;
  mem

let run_timing ?trace (compiled : Compile.t) =
  let mem = timing_memory compiled in
  match
    Interp.run ?trace ~config:compiled.Compile.config ~functional:false ~mem
      compiled.Compile.program
  with
  | exception Error.Sim_error e -> raise (Runner_error (Sim e))
  | result ->
      if result.Interp.races <> [] then
        raise (Runner_error (Sim (Error.Race result.Interp.races)));
      result.Interp.seconds

let timing_resilient ?faults ?(retry = Interp.default_retry) ?watchdog ?trace
    (compiled : Compile.t) =
  let mem = timing_memory compiled in
  match
    Interp.run ?trace ?faults ?watchdog ~retry ~config:compiled.Compile.config
      ~functional:false ~mem compiled.Compile.program
  with
  | exception Error.Sim_error (Error.Fault_exhausted f) ->
      Sw_obs.Metrics.incr_a "runner.mpe_fallbacks_total";
      Ok
        {
          seconds = mpe_fallback_seconds compiled ~at:f.sim_time;
          recovery =
            Mpe_fallback { reason = Error.to_string (Error.Fault_exhausted f) };
        }
  | exception Error.Sim_error e -> Error (Sim e)
  | result ->
      if result.Interp.races <> [] then
        Error (Sim (Error.Race result.Interp.races))
      else
        Ok
          {
            seconds = result.Interp.seconds;
            recovery =
              (if result.Interp.retries > 0 then Retried result.Interp.retries
               else No_recovery);
          }

let perf_of ~flops ~seconds ~exact =
  { seconds; gflops = Interp.gflops ~flops ~seconds; exact }

let measure_exact (compiled : Compile.t) =
  let seconds = run_timing compiled in
  perf_of ~flops:(Compile.flops compiled) ~seconds ~exact:true

let traced (compiled : Compile.t) =
  let trace = Trace.create () in
  let seconds = run_timing ~trace compiled in
  (trace, perf_of ~flops:(Compile.flops compiled) ~seconds ~exact:true)

(* Estimated number of simulated events, to decide whether exact simulation
   is affordable. *)
let op_estimate (compiled : Compile.t) =
  let t = compiled.Compile.tiles in
  let blocks = t.Tile_model.nbi * t.Tile_model.nbj * batch_count compiled.Compile.spec in
  let per_block =
    8 + (t.Tile_model.nko * (4 + (t.Tile_model.panel_chunks * 10)))
  in
  let cpes =
    compiled.Compile.config.Config.mesh_rows
    * compiled.Compile.config.Config.mesh_cols
  in
  blocks * per_block * cpes

let one_block_perf (compiled : Compile.t) ~k =
  let spec = compiled.Compile.spec in
  let t = compiled.Compile.tiles in
  let block_spec =
    Spec.make ~alpha:spec.Spec.alpha ~beta:spec.Spec.beta ~ta:spec.Spec.ta
      ~tb:spec.Spec.tb ~fusion:spec.Spec.fusion ~m:t.Tile_model.mesh_m
      ~n:t.Tile_model.mesh_n ~k ()
  in
  let c =
    Compile.run_exn
      (Session.create ~no_cache:true ~options:compiled.Compile.options
         ~arch:compiled.Compile.config ())
      block_spec
  in
  run_timing c -. compiled.Compile.config.Config.mesh_startup_s

let measure ?(force_exact = false) (compiled : Compile.t) =
  if force_exact || op_estimate compiled < 3_000_000 then
    measure_exact compiled
  else begin
    let spec = compiled.Compile.spec in
    let t = compiled.Compile.tiles in
    let panel = t.Tile_model.panel_k in
    let blocks =
      float_of_int (t.Tile_model.nbi * t.Tile_model.nbj * batch_count spec)
    in
    let startup = compiled.Compile.config.Config.mesh_startup_s in
    let block_time =
      if spec.Spec.k <= 6 * panel then one_block_perf compiled ~k:spec.Spec.k
      else begin
        let k1 = 3 * panel and k2 = 6 * panel in
        let t1 = one_block_perf compiled ~k:k1 in
        let t2 = one_block_perf compiled ~k:k2 in
        let slope = (t2 -. t1) /. float_of_int (k2 - k1) in
        t1 +. (slope *. float_of_int (spec.Spec.k - k1))
      end
    in
    let seconds = startup +. (blocks *. block_time) in
    perf_of ~flops:(Compile.flops compiled) ~seconds ~exact:false
  end
