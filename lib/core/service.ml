module Json = Sw_obs.Json
module Error = Sw_arch.Error

type extension =
  Sw_obs.Json.t -> (Sw_obs.Json.t, Sw_arch.Error.t) result

type t = { session : Session.t; extensions : (string * extension) list }

let builtin_methods = [ "ping"; "compile"; "verify"; "profile"; "stat" ]

let create ?(extensions = []) ~session () =
  List.iter
    (fun (name, _) ->
      if List.mem name builtin_methods then
        invalid_arg
          (Printf.sprintf "Service.create: extension %S shadows a builtin"
             name))
    extensions;
  { session; extensions }

let session t = t.session

let invalid fmt = Printf.ksprintf (fun s -> Result.Error (Error.Invalid s)) fmt

let compile_result_json (compiled : Compile.t) =
  Json.Obj
    [
      ("name", Json.String compiled.Compile.program.Sw_ast.Ast.prog_name);
      ("spec", Spec.to_json compiled.Compile.original);
      ("padded", Spec.to_json compiled.Compile.spec);
      ("options", Options.to_json compiled.Compile.options);
      ("spm_bytes", Json.Int (Sw_ast.Ast.spm_bytes compiled.Compile.program));
      ("mpe_c", Json.String (Cemit.mpe_file compiled));
      ("cpe_c", Json.String (Cemit.cpe_file compiled));
    ]

(* Decode params.spec / params.options and compile through the shared
   session (an options override derives a sibling session; the cache is
   shared, and keys include the options, so this is safe). *)
let compile_request t params =
  match Json.member "spec" params with
  | None -> invalid "compile: params lack \"spec\""
  | Some spec_json -> (
      match Spec.of_json spec_json with
      | Result.Error e -> invalid "compile: %s" e
      | Ok spec -> (
          let session =
            match Json.member "options" params with
            | None -> Ok t.session
            | Some o -> (
                match Options.of_json o with
                | Ok opts -> Ok (Session.with_options t.session opts)
                | Result.Error e ->
                    Result.Error (Error.Invalid ("compile: " ^ e)))
          in
          match session with
          | Result.Error _ as e -> e
          | Ok session -> (
              match Session.run session spec with
              | Ok compiled -> Ok compiled
              | Result.Error _ as e -> e)))

let verify_request t params =
  match compile_request t params with
  | Result.Error _ as e -> e
  | Ok compiled -> (
      let seed =
        Option.bind (Json.member "seed" params) Json.to_int_opt
      in
      match Runner.verify ?seed compiled with
      | Ok () ->
          Ok
            (Json.Obj
               [
                 ("verified", Json.Bool true);
                 ("spec", Spec.to_json compiled.Compile.original);
                 ("padded", Spec.to_json compiled.Compile.spec);
               ])
      | Result.Error (Runner.Sim e) -> Result.Error e
      | Result.Error (Runner.Mismatch _ as e) ->
          Result.Error (Error.Invalid (Runner.error_to_string e)))

(* ROADMAP item 1 follow-up: expose the simulator's performance model
   over the wire so remote clients can rank configurations without a
   local toolchain. *)
let profile_request t params =
  match compile_request t params with
  | Result.Error _ as e -> e
  | Ok compiled ->
      let perf = Runner.measure compiled in
      Ok
        (Json.Obj
           [
             ("gflops", Json.Float perf.Runner.gflops);
             ("seconds", Json.Float perf.Runner.seconds);
             ("exact", Json.Bool perf.Runner.exact);
             ("spec", Spec.to_json compiled.Compile.original);
             ("padded", Spec.to_json compiled.Compile.spec);
             ("options", Options.to_json compiled.Compile.options);
             ( "spm_bytes",
               Json.Int (Sw_ast.Ast.spm_bytes compiled.Compile.program) );
           ])

let stat_request t =
  let cache =
    match Session.cache_stats t.session with
    | None -> Json.Null
    | Some s ->
        Json.Obj
          [
            ("hits", Json.Int s.Plan_cache.hits);
            ("misses", Json.Int s.Plan_cache.misses);
            ("evictions", Json.Int s.Plan_cache.evictions);
            ("entries", Json.Int s.Plan_cache.entries);
          ]
  in
  let store =
    match Session.store_stats t.session with
    | None -> Json.Null
    | Some s ->
        Json.Obj
          [
            ("entries", Json.Int s.Sw_host.Store.entries);
            ("bytes", Json.Int s.Sw_host.Store.bytes);
            ("hits", Json.Int s.Sw_host.Store.hits);
            ("misses", Json.Int s.Sw_host.Store.misses);
            ("puts", Json.Int s.Sw_host.Store.puts);
            ("quarantined", Json.Int s.Sw_host.Store.quarantined);
            ("served_corrupt", Json.Int s.Sw_host.Store.served_corrupt);
          ]
  in
  Ok (Json.Obj [ ("cache", cache); ("store", store) ])

let handle ~client:_ ~meth ~params t =
  try
    match meth with
    | "ping" -> Ok (Json.Obj [ ("pong", Json.Bool true) ])
    | "compile" -> Result.map compile_result_json (compile_request t params)
    | "verify" -> verify_request t params
    | "profile" -> profile_request t params
    | "stat" -> stat_request t
    | _ -> (
        match List.assoc_opt meth t.extensions with
        | Some ext -> ext params
        | None ->
            invalid "unknown method %S (protocol v1: %s)" meth
              (String.concat "|" (builtin_methods @ List.map fst t.extensions)))
  with
  | Error.Sim_error e -> Result.Error e
  | Runner.Runner_error (Runner.Sim e) -> Result.Error e
  | Runner.Runner_error e -> Result.Error (Error.Invalid (Runner.error_to_string e))

let handler t ~client ~meth ~params = handle ~client ~meth ~params t
