(** Generator options — the knobs of the performance-breakdown study
    (§8.1) and of the real tool's command line.

    The four published variants:
    - {!baseline}: automatic DMA only, naive CPE loops (red bars);
    - {!with_asm}: + the inline assembly micro kernel (orange);
    - {!with_rma}: + RMA row/column broadcast, no latency hiding (green);
    - {!all_on}: + two-level software pipelining and double buffering
      (cyan; the full pipeline). *)

type t = {
  use_asm : bool;  (** micro kernel instead of naive loops ([--no-use-asm]) *)
  use_rma : bool;  (** share SPM tiles over the mesh instead of 8x DMA *)
  hiding : bool;  (** software pipelining + double buffering (needs RMA) *)
}

val baseline : t
val with_asm : t
val with_rma : t
val all_on : t
val breakdown : (string * t) list
(** The four variants in §8.1 order, with display names. *)

val name : t -> string
val validate : t -> (unit, string) result

val to_json : t -> Sw_obs.Json.t
(** Wire image: the three booleans, by field name. *)

val of_json : Sw_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; omitted fields default to {!all_on}'s values
    and the combination is {!validate}d. Never raises. *)
