(* Slim façade over the pass pipeline: builds the schedule tree by running
   every tree-transformation pass ({!Pass_registry.pipeline} minus AST
   generation) and re-exports the program inventories from
   {!Pass_common}. Kept as the stable construction API; the pass manager
   itself ({!Pass}, {!Compile}) is the instrumented way in. *)

let gemm_stmt = Pass_common.gemm_stmt
let marks' = Pass_common.marks
let spm_decls = Pass_common.spm_decls
let replies = Pass_common.replies
let arrays = Pass_common.arrays

let tree_passes () =
  List.filter (fun p -> p.Pass.name <> "astgen") Pass_registry.pipeline

let tree spec opts tiles =
  (match Options.validate opts with
  | Ok () -> ()
  | Error e -> invalid_arg ("Build.tree: " ^ e));
  let st = Pass.init ~spec ~options:opts ~config:Sw_arch.Config.sw26010pro ~tiles in
  match Pass.run_pipeline (tree_passes ()) st with
  | Error e -> invalid_arg ("Build.tree: " ^ e)
  | Ok (st, _) -> (
      match st.Pass.tree with
      | Some t -> t
      | None -> invalid_arg "Build.tree: pipeline produced no schedule tree")

let marks spec opts tiles =
  let st = Pass.init ~spec ~options:opts ~config:Sw_arch.Config.sw26010pro ~tiles in
  marks' { st with Pass.fusion = spec.Spec.fusion }
