type fusion = No_fusion | Prologue of string | Epilogue of string

type t = {
  m : int;
  n : int;
  k : int;
  batch : int option;
  alpha : float;
  beta : float;
  ta : bool;
  tb : bool;
  fusion : fusion;
}

let make ?batch ?(alpha = 1.0) ?(beta = 1.0) ?(ta = false) ?(tb = false)
    ?(fusion = No_fusion) ~m ~n ~k () =
  if m <= 0 || n <= 0 || k <= 0 then invalid_arg "Spec.make: non-positive size";
  (match batch with
  | Some b when b <= 0 -> invalid_arg "Spec.make: non-positive batch"
  | _ -> ());
  (match fusion with
  | No_fusion -> ()
  | Prologue fn | Epilogue fn ->
      if not (Sw_kernels.Elementwise.known fn) then
        invalid_arg ("Spec.make: unknown element-wise kernel " ^ fn));
  { m; n; k; batch; alpha; beta; ta; tb; fusion }

let mesh_m c = c.Sw_arch.Config.mesh_rows * c.Sw_arch.Config.mk_m
let mesh_n c = c.Sw_arch.Config.mesh_cols * c.Sw_arch.Config.mk_n
let panel_k c =
  min c.Sw_arch.Config.mesh_rows c.Sw_arch.Config.mesh_cols
  * c.Sw_arch.Config.mk_k

let pad_for t config =
  {
    t with
    m = Sw_blas.Matrix.round_up t.m ~multiple:(mesh_m config);
    n = Sw_blas.Matrix.round_up t.n ~multiple:(mesh_n config);
    k = Sw_blas.Matrix.round_up t.k ~multiple:(panel_k config);
  }

let is_aligned t config =
  t.m mod mesh_m config = 0
  && t.n mod mesh_n config = 0
  && t.k mod panel_k config = 0

let flops t =
  2 * t.m * t.n * t.k * match t.batch with Some b -> b | None -> 1

let to_string t =
  let base =
    Printf.sprintf "%dx%dx%d" t.m t.n t.k
  in
  let batch =
    match t.batch with Some b -> Printf.sprintf " batch=%d" b | None -> ""
  in
  let fusion =
    match t.fusion with
    | No_fusion -> ""
    | Prologue fn -> Printf.sprintf " prologue=%s" fn
    | Epilogue fn -> Printf.sprintf " epilogue=%s" fn
  in
  let trans =
    (if t.ta then " At" else "") ^ if t.tb then " Bt" else ""
  in
  Printf.sprintf "%s alpha=%g beta=%g%s%s%s" base t.alpha t.beta trans batch
    fusion

(* ------------------------------------------------------------------ *)
(* Wire image                                                           *)
(* ------------------------------------------------------------------ *)

let to_json t =
  let open Sw_obs.Json in
  Obj
    ([ ("m", Int t.m); ("n", Int t.n); ("k", Int t.k) ]
    @ (match t.batch with Some b -> [ ("batch", Int b) ] | None -> [])
    @ [
        ("alpha", Float t.alpha);
        ("beta", Float t.beta);
        ("ta", Bool t.ta);
        ("tb", Bool t.tb);
      ]
    @
    match t.fusion with
    | No_fusion -> []
    | Prologue fn -> [ ("prologue", String fn) ]
    | Epilogue fn -> [ ("epilogue", String fn) ])

let of_json json =
  let module J = Sw_obs.Json in
  let req name conv =
    match Option.bind (J.member name json) conv with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "spec: missing or bad %S" name)
  in
  let opt name conv ~default =
    match J.member name json with
    | None -> Ok default
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "spec: bad %S" name))
  in
  let ( let* ) = Result.bind in
  let* m = req "m" J.to_int_opt in
  let* n = req "n" J.to_int_opt in
  let* k = req "k" J.to_int_opt in
  let* alpha = opt "alpha" J.to_float_opt ~default:1.0 in
  let* beta = opt "beta" J.to_float_opt ~default:1.0 in
  let* ta = opt "ta" J.to_bool_opt ~default:false in
  let* tb = opt "tb" J.to_bool_opt ~default:false in
  let* batch =
    opt "batch" (fun v -> Option.map Option.some (J.to_int_opt v)) ~default:None
  in
  let* fusion =
    match (J.member "prologue" json, J.member "epilogue" json) with
    | Some _, Some _ -> Error "spec: both \"prologue\" and \"epilogue\""
    | Some v, None -> (
        match J.to_string_opt v with
        | Some fn -> Ok (Prologue fn)
        | None -> Error "spec: bad \"prologue\"")
    | None, Some v -> (
        match J.to_string_opt v with
        | Some fn -> Ok (Epilogue fn)
        | None -> Error "spec: bad \"epilogue\"")
    | None, None -> Ok No_fusion
  in
  match make ?batch ~alpha ~beta ~ta ~tb ~fusion ~m ~n ~k () with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg
