open Sw_arch

type candidate = {
  mk : int * int * int;
  feasible : bool;
  note : string;
  gflops : float option;
}

let default_candidates =
  [
    (16, 16, 8);
    (32, 32, 16);
    (32, 64, 32);
    (64, 32, 32);
    (64, 64, 16);
    (64, 64, 32);
    (64, 64, 64);
    (96, 96, 32);
    (128, 128, 64);
  ]

let kernel_efficiency (config : Config.t) (m, n, k) =
  if (m, n, k) = (config.Config.mk_m, config.Config.mk_n, config.Config.mk_k)
  then (config.Config.micro_kernel_efficiency, "vendor assembly routine")
  else
    match Sw_kernels.Kgen.generate ~m ~n ~k () with
    | Error e -> (0.0, "kernel generation failed: " ^ e)
    | Ok t ->
        ( Sw_kernels.Kgen.estimated_efficiency t,
          Printf.sprintf "generated kernel (est. %.1f%% of SIMD peak)"
            (100.0 *. Sw_kernels.Kgen.estimated_efficiency t) )

let search ?(candidates = default_candidates) ~config spec =
  List.map
    (fun (m, n, k) ->
      let eff, source = kernel_efficiency config (m, n, k) in
      if eff <= 0.0 then
        { mk = (m, n, k); feasible = false; note = source; gflops = None }
      else
        let cfg =
          {
            config with
            Config.mk_m = m;
            mk_n = n;
            mk_k = k;
            micro_kernel_efficiency = eff;
          }
        in
        match Config.validate cfg with
        | Error e -> { mk = (m, n, k); feasible = false; note = e; gflops = None }
        | Ok () -> (
            match Compile.run (Session.create ~no_cache:true ~arch:cfg ()) spec with
            | Error e ->
                {
                  mk = (m, n, k);
                  feasible = false;
                  note = Sw_arch.Error.to_string e;
                  gflops = None;
                }
            | Ok compiled ->
                let p = Runner.measure compiled in
                {
                  mk = (m, n, k);
                  feasible = true;
                  note = source;
                  gflops = Some p.Runner.gflops;
                }))
    candidates

let best candidates =
  let top =
    List.fold_left
      (fun acc c ->
        match (acc, c.gflops) with
        | None, Some g -> Some (c.mk, g)
        | Some (_, g0), Some g when g > g0 -> Some (c.mk, g)
        | _ -> acc)
      None candidates
  in
  match top with
  | Some r -> r
  | None -> failwith "Tuner.best: no feasible candidate"

let report candidates =
  let buf = Buffer.create 512 in
  List.iter
    (fun c ->
      let m, n, k = c.mk in
      Buffer.add_string buf
        (match c.gflops with
        | Some g -> Printf.sprintf "  %3dx%3dx%3d  %9.2f Gflops  (%s)\n" m n k g c.note
        | None -> Printf.sprintf "  %3dx%3dx%3d   infeasible: %s\n" m n k c.note))
    candidates;
  Buffer.contents buf
