open Sw_tree

type state = {
  spec : Spec.t;
  options : Options.t;
  config : Sw_arch.Config.t;
  tiles : Tile_model.t;
  fusion : Spec.fusion;
  stmt : Stmt.t option;
  batch_band : Tree.band option;
  par_band : Tree.band option;
  block_band : Tree.band option;
  coord_band : Tree.band option;
  red_band : Tree.band option;
  point_band : Tree.band option;
  ko_band : Tree.band option;
  l_band : Tree.band option;
  chain : Tree.t option;
  tree : Tree.t option;
  body : Sw_ast.Ast.block option;
}

let init ~spec ~options ~config ~tiles =
  {
    spec;
    options;
    config;
    tiles;
    fusion = Spec.No_fusion;
    stmt = None;
    batch_band = None;
    par_band = None;
    block_band = None;
    coord_band = None;
    red_band = None;
    point_band = None;
    ko_band = None;
    l_band = None;
    chain = None;
    tree = None;
    body = None;
  }

type t = {
  name : string;
  section : string;
  descr : string;
  required : bool;
  relevant : state -> bool;
  run : state -> state;
}

exception Pass_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Pass_error s)) fmt

let component st field what =
  match field st with
  | Some x -> x
  | None -> fail "missing pipeline component: %s" what

(* ------------------------------------------------------------------ *)
(* Sabotage (testing the testers)                                       *)
(* ------------------------------------------------------------------ *)

(* A deliberately mis-compiled pass, used to demonstrate that the
   differential conformance engine actually catches generator bugs
   (`swgemmgen fuzz --sabotage strip_mine`). Set once at process start,
   before any compilation; individual passes consult [sabotaged]. *)
let sabotage_target : string option ref = ref None
let set_sabotage t = sabotage_target := t
let sabotaged name = !sabotage_target = Some name

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let registry : t list ref = ref []

let register p =
  if List.exists (fun q -> String.equal q.name p.name) !registry then
    invalid_arg ("Pass.register: duplicate pass " ^ p.name);
  registry := !registry @ [ p ]

let registered () = !registry
let find name = List.find_opt (fun p -> String.equal p.name name) !registry

(* ------------------------------------------------------------------ *)
(* Instrumented pipeline runner                                         *)
(* ------------------------------------------------------------------ *)

type stat = {
  pass : string;
  ran : bool;
  seconds : float;
  nodes_before : int;
  nodes_after : int;
  depth_after : int;
}

let tree_nodes st =
  match st.tree with None -> 0 | Some t -> (Tree.stats t).Tree.nodes

let tree_depth st =
  match st.tree with None -> 0 | Some t -> (Tree.stats t).Tree.depth

let run_pipeline ?validate ?observer passes state =
  let run_one (state, stats) p =
    if not (p.required || p.relevant state) then
      ( state,
        {
          pass = p.name;
          ran = false;
          seconds = 0.0;
          nodes_before = tree_nodes state;
          nodes_after = tree_nodes state;
          depth_after = tree_depth state;
        }
        :: stats )
    else begin
      let nodes_before = tree_nodes state in
      let t0 = Unix.gettimeofday () in
      let state =
        Sw_obs.Span.ambient ~cat:"pass"
          ~args:[ ("section", Sw_obs.Span.S p.section) ]
          p.name
          (fun () -> p.run state)
      in
      let seconds = Unix.gettimeofday () -. t0 in
      (if Sw_obs.Metrics.enabled () then begin
         let labels = [ ("pass", p.name) ] in
         Sw_obs.Metrics.incr_a ~labels "pass.runs_total";
         Sw_obs.Metrics.observe_a ~labels "pass.seconds" seconds;
         Sw_obs.Metrics.set_a ~labels "pass.tree_nodes"
           (float_of_int (tree_nodes state));
         Sw_obs.Metrics.set_a ~labels "pass.tree_depth"
           (float_of_int (tree_depth state))
       end);
      (match validate with
      | None -> ()
      | Some check -> (
          match check state with
          | Ok () -> ()
          | Error e -> fail "after pass %s: %s" p.name e));
      (match observer with None -> () | Some f -> f p state);
      ( state,
        {
          pass = p.name;
          ran = true;
          seconds;
          nodes_before;
          nodes_after = tree_nodes state;
          depth_after = tree_depth state;
        }
        :: stats )
    end
  in
  match List.fold_left run_one (state, []) passes with
  | state, stats -> Ok (state, List.rev stats)
  | exception Pass_error e -> Error e

let report stats =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    (Printf.sprintf "%-16s %-6s %10s %8s %8s %7s\n" "pass" "ran" "time(us)"
       "nodes" "+nodes" "depth");
  List.iter
    (fun s ->
      Buffer.add_string buffer
        (Printf.sprintf "%-16s %-6s %10.1f %8d %+8d %7d\n" s.pass
           (if s.ran then "yes" else "no")
           (1e6 *. s.seconds) s.nodes_after
           (s.nodes_after - s.nodes_before)
           s.depth_after))
    stats;
  Buffer.contents buffer

let total_seconds stats =
  List.fold_left (fun acc s -> acc +. s.seconds) 0.0 stats
