(** Schedule-tree construction: the paper's transformation sequence.

    Starting from the initial schedule tree of the naive loop nest
    (Fig. 2b), this module performs, driven by {!Options.t}:

    - batch-dimension isolation (Fig. 3),
    - compute decomposition: tiling to the micro-kernel shape, mesh-level
      tiling and [Rid]/[Cid] binding (Fig. 4), strip-mining of the reduced
      tile loop by the mesh width (Fig. 6),
    - extension-node insertion for the C/A/B DMA transfers with the
      argument inference of §4 (Eq. 1) and for the RMA row/column
      broadcasts of §5 (Fig. 9),
    - loop peeling and reply-indicator separation implementing the
      two-level software pipeline of §6 together with the double-buffering
      parity subscripts (Fig. 11),
    - mark nodes for the micro kernel (§7.2) and the fusion patterns
      (§7.3).

    The result is a schedule tree ready for AST generation plus the mark
    expansions, SPM declarations and reply-counter inventory that
    {!Compile} assembles into a program.

    Since the pass-manager split this module is a thin façade: [tree] runs
    the tree-transformation passes of {!Pass_registry.pipeline} and the
    inventories re-export {!Pass_common}. New code should drive the
    pipeline through {!Compile} (instrumentation, validation, plan cache)
    or {!Pass.run_pipeline} directly. *)

open Sw_tree

val gemm_stmt : Spec.t -> Stmt.t
(** The GEMM statement with this spec's concrete loop bounds. *)

val tree : Spec.t -> Options.t -> Tile_model.t -> Tree.t

val marks :
  Spec.t -> Options.t -> Tile_model.t -> string -> Sw_ast.Ast.block option
(** Mark expansion: splices the micro-kernel invocation (and the fused
    prologue's element-wise pass) in place of the point band. *)

val spm_decls : Spec.t -> Options.t -> Tile_model.t -> Sw_ast.Ast.spm_decl list
val replies : Options.t -> string list
val arrays : Spec.t -> Sw_ast.Ast.array_decl list
