type t = { use_asm : bool; use_rma : bool; hiding : bool }

let baseline = { use_asm = false; use_rma = false; hiding = false }
let with_asm = { use_asm = true; use_rma = false; hiding = false }
let with_rma = { use_asm = true; use_rma = true; hiding = false }
let all_on = { use_asm = true; use_rma = true; hiding = true }

let breakdown =
  [
    ("dma-only", baseline);
    ("+asm-kernel", with_asm);
    ("+rma-bcast", with_rma);
    ("+latency-hiding", all_on);
  ]

let name t =
  match List.find_opt (fun (_, o) -> o = t) breakdown with
  | Some (n, _) -> n
  | None ->
      Printf.sprintf "asm=%b rma=%b hiding=%b" t.use_asm t.use_rma t.hiding

let validate t =
  if t.hiding && not t.use_rma then
    Error "latency hiding requires the RMA decomposition"
  else Ok ()

let to_json t =
  Sw_obs.Json.Obj
    [
      ("use_asm", Sw_obs.Json.Bool t.use_asm);
      ("use_rma", Sw_obs.Json.Bool t.use_rma);
      ("hiding", Sw_obs.Json.Bool t.hiding);
    ]

let of_json json =
  let module J = Sw_obs.Json in
  let field name ~default =
    match J.member name json with
    | None -> Ok default
    | Some v -> (
        match J.to_bool_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "options: bad %S" name))
  in
  let ( let* ) = Result.bind in
  let* use_asm = field "use_asm" ~default:all_on.use_asm in
  let* use_rma = field "use_rma" ~default:all_on.use_rma in
  let* hiding = field "hiding" ~default:all_on.hiding in
  let t = { use_asm; use_rma; hiding } in
  match validate t with Ok () -> Ok t | Error e -> Error e
