type t = {
  tm : int;
  tn : int;
  tk : int;
  mesh_rows : int;
  mesh_cols : int;
  panel_chunks : int;
  mesh_m : int;
  mesh_n : int;
  panel_k : int;
  nbi : int;
  nbj : int;
  nko : int;
  nkt : int;
}

let choose (spec : Spec.t) (config : Sw_arch.Config.t) =
  if not (Spec.is_aligned spec config) then
    invalid_arg
      (Printf.sprintf
         "Tile_model.choose: %s is not aligned to the decomposition (pad \
          first)"
         (Spec.to_string spec));
  let tm = config.Sw_arch.Config.mk_m
  and tn = config.Sw_arch.Config.mk_n
  and tk = config.Sw_arch.Config.mk_k
  and mesh_rows = config.Sw_arch.Config.mesh_rows
  and mesh_cols = config.Sw_arch.Config.mesh_cols in
  let panel_chunks = min mesh_rows mesh_cols in
  let mesh_m = mesh_rows * tm
  and mesh_n = mesh_cols * tn
  and panel_k = panel_chunks * tk in
  {
    tm;
    tn;
    tk;
    mesh_rows;
    mesh_cols;
    panel_chunks;
    mesh_m;
    mesh_n;
    panel_k;
    nbi = spec.Spec.m / mesh_m;
    nbj = spec.Spec.n / mesh_n;
    nko = spec.Spec.k / panel_k;
    nkt = spec.Spec.k / tk;
  }

let spm_bytes_needed t ~options ~fusion =
  ignore fusion;
  let copies = if options.Options.hiding then 2 else 1 in
  let c_tile = t.tm * t.tn in
  let a_tile = t.tm * t.tk and b_tile = t.tk * t.tn in
  let dma = copies * (a_tile + b_tile) in
  let bcast = if options.Options.use_rma then copies * (a_tile + b_tile) else 0 in
  8 * (c_tile + dma + bcast)

let to_string t =
  Printf.sprintf
    "tile %dx%dx%d, mesh %dx%d (block %dx%d, panel %d), trips bi=%d bj=%d \
     ko=%d kt=%d"
    t.tm t.tn t.tk t.mesh_rows t.mesh_cols t.mesh_m t.mesh_n t.panel_k t.nbi
    t.nbj t.nko t.nkt
