(** Pass manager: the paper's transformation sequence as composable,
    validated, instrumented passes.

    Each paper section is one registered pass over the pipeline state —
    [tile] (§3.1), [mesh_bind] (§3.2, Fig. 4b), [strip_mine] (Fig. 6),
    [dma_insert] (§4), [rma_broadcast] (§5), [pipeline_hiding] (§6),
    [fusion] (§7.3), [astgen] (§7.1–7.2) — with a uniform
    [state -> state] signature. Optional passes are enabled by the
    compilation options ([relevant]), subsuming the per-optimization
    toggles of the breakdown study; required passes always run. The runner
    records per-pass wall-clock and schedule-tree size statistics and can
    run a validator between every pass (debug mode) and invoke an observer
    after each pass ([--dump-after]). *)

open Sw_tree

type state = {
  spec : Spec.t;  (** padded problem *)
  options : Options.t;
  config : Sw_arch.Config.t;
  tiles : Tile_model.t;
  fusion : Spec.fusion;
      (** fusion actually applied — [No_fusion] until the [fusion] pass
          copies it from the spec *)
  stmt : Stmt.t option;
  batch_band : Tree.band option;
  par_band : Tree.band option;  (** consumed by [mesh_bind] *)
  block_band : Tree.band option;
  coord_band : Tree.band option;
  red_band : Tree.band option;
  point_band : Tree.band option;
  ko_band : Tree.band option;
  l_band : Tree.band option;
  chain : Tree.t option;  (** the reduced-dimension subtree under the C tile *)
  tree : Tree.t option;  (** snapshot of the schedule tree after each pass *)
  body : Sw_ast.Ast.block option;  (** generated AST, set by [astgen] *)
}

val init :
  spec:Spec.t ->
  options:Options.t ->
  config:Sw_arch.Config.t ->
  tiles:Tile_model.t ->
  state

type t = {
  name : string;
  section : string;  (** paper section implemented by the pass *)
  descr : string;
  required : bool;  (** cannot be disabled *)
  relevant : state -> bool;
      (** whether the options/spec call for this optional pass *)
  run : state -> state;
}

exception Pass_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Pass_error}; a pass body's way to reject its input. *)

val component : state -> (state -> 'a option) -> string -> 'a
(** Fetch a state component a pass depends on, failing with a
    missing-component {!Pass_error} naming [what] when absent. *)

(* Sabotage (testing the testers) *)

val set_sabotage : string option -> unit
(** Arm (or disarm) a deliberate mis-compilation of the named pass — the
    hook behind [swgemmgen fuzz --sabotage PASS], used to demonstrate that
    the differential conformance engine catches real generator bugs.
    Process-global; set once at startup before any compilation. Never arm
    it in production paths. *)

val sabotaged : string -> bool
(** Whether the named pass should mis-compile itself (consulted by the
    pass bodies that support sabotage; currently [strip_mine]). *)

(* Registry *)

val register : t -> unit
(** Append to the global registry; raises [Invalid_argument] on a
    duplicate name. The canonical pipeline is {!Pass_registry.pipeline}. *)

val registered : unit -> t list
val find : string -> t option

(* Instrumented runner *)

type stat = {
  pass : string;
  ran : bool;
  seconds : float;
  nodes_before : int;  (** schedule-tree nodes before the pass *)
  nodes_after : int;
  depth_after : int;
}

val run_pipeline :
  ?validate:(state -> (unit, string) result) ->
  ?observer:(t -> state -> unit) ->
  t list ->
  state ->
  (state * stat list, string) result
(** Run the passes in order. A pass executes when it is [required] or
    [relevant]; skipped passes still appear in the statistics with
    [ran = false]. When [validate] is given (debug mode) it runs after
    every executed pass and a failure aborts the pipeline. [observer]
    fires after every executed pass (dump hooks). *)

val report : stat list -> string
(** Fixed-width per-pass table: wall-clock, tree growth, depth. *)

val total_seconds : stat list -> float
