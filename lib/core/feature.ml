(* Coverage features of a compiled plan. The conformance fuzzer keys its
   corpus on the canonical string [to_key]: a case earns a slot in the
   corpus only when its compiled shape (not its raw spec) is novel. *)

type t = {
  mesh : int * int;
  mk : int * int * int;
  options : string;
  fusion : string;
  ta : bool;
  tb : bool;
  batched : bool;
  padded : bool;
  trips : int * int * int;  (** bucketed nbi, nbj, nko *)
  passes : string list;  (** passes that actually ran, pipeline order *)
  spm_buffers : int;  (** SPM buffer count including double-buffer copies *)
  tree_marks : int;
  tree_sequences : int;
  tree_nodes : int;  (** bucketed *)
}

(* Loop trip counts collapse into 1 / 2 / 3 / 4+ so size jitter alone
   does not flood the corpus. *)
let bucket_trip n = if n >= 4 then 4 else max n 1

(* Tree node totals bucket on a coarse log scale for the same reason. *)
let bucket_nodes n =
  if n < 16 then 16 else if n < 32 then 32 else if n < 64 then 64 else 128

let fusion_tag = function
  | Spec.No_fusion -> "none"
  | Spec.Prologue fn -> "pro:" ^ fn
  | Spec.Epilogue fn -> "epi:" ^ fn

let of_compiled (c : Compile.t) =
  let config = c.Compile.config in
  let tiles = c.Compile.tiles in
  let stats = Sw_tree.Tree.stats c.Compile.tree in
  let spm_buffers =
    List.fold_left
      (fun acc (d : Sw_ast.Ast.spm_decl) -> acc + d.Sw_ast.Ast.copies)
      0 c.Compile.program.Sw_ast.Ast.spm_decls
  in
  {
    mesh = (config.Sw_arch.Config.mesh_rows, config.Sw_arch.Config.mesh_cols);
    mk =
      ( config.Sw_arch.Config.mk_m,
        config.Sw_arch.Config.mk_n,
        config.Sw_arch.Config.mk_k );
    options = Options.name c.Compile.options;
    fusion = fusion_tag c.Compile.spec.Spec.fusion;
    ta = c.Compile.spec.Spec.ta;
    tb = c.Compile.spec.Spec.tb;
    batched = c.Compile.spec.Spec.batch <> None;
    padded = c.Compile.spec <> c.Compile.original;
    trips =
      ( bucket_trip tiles.Tile_model.nbi,
        bucket_trip tiles.Tile_model.nbj,
        bucket_trip tiles.Tile_model.nko );
    passes =
      List.filter_map
        (fun (s : Pass.stat) -> if s.Pass.ran then Some s.Pass.pass else None)
        c.Compile.pass_stats;
    spm_buffers;
    tree_marks = stats.Sw_tree.Tree.marks;
    tree_sequences = stats.Sw_tree.Tree.sequences;
    tree_nodes = bucket_nodes stats.Sw_tree.Tree.nodes;
  }

let to_key f =
  let mr, mc = f.mesh in
  let m, n, k = f.mk in
  let ti, tj, tk = f.trips in
  Printf.sprintf
    "mesh%dx%d/mk%dx%dx%d/%s/fus=%s/t%c%c/%s%s/trip%d.%d.%d/spm%d/mk%d.sq%d.nd%d/%s"
    mr mc m n k f.options f.fusion
    (if f.ta then 'T' else 'n')
    (if f.tb then 'T' else 'n')
    (if f.batched then "bat" else "one")
    (if f.padded then "+pad" else "")
    ti tj tk f.spm_buffers f.tree_marks f.tree_sequences f.tree_nodes
    (String.concat "," f.passes)
