open Sw_poly
open Sw_tree

type spec = { vm : int; vn : int; valpha : float; vbeta : float }

let make_spec ?(alpha = 1.0) ?(beta = 1.0) ~m ~n () =
  if m <= 0 || n <= 0 then invalid_arg "Gemv.make_spec: non-positive size";
  { vm = m; vn = n; valpha = alpha; vbeta = beta }

type compiled = {
  spec : spec;
  original : spec;
  config : Sw_arch.Config.t;
  tree : Tree.t;
  program : Sw_ast.Ast.program;
}

exception Gemv_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Gemv_error s)) fmt

let v = Aff.var
let c = Aff.const
let ( +: ) = Aff.add
let ( *: ) = Aff.mul

(* The x panel matches the GEMM k-panel depth. *)
let panel (config : Sw_arch.Config.t) =
  min config.Sw_arch.Config.mesh_rows config.Sw_arch.Config.mesh_cols
  * config.Sw_arch.Config.mk_k

(* Rows handled per full mesh sweep: tile height x rows x cols (cyclic over
   the linearized CPE index). *)
let row_sweep (config : Sw_arch.Config.t) =
  config.Sw_arch.Config.mk_m
  * config.Sw_arch.Config.mesh_rows
  * config.Sw_arch.Config.mesh_cols

let gemv_stmt spec =
  let domain = Bset.universe ~params:[] ~dims:[ "i"; "k" ] in
  let domain = Bset.constrain_range domain "i" ~lo:(c 0) ~hi:(c spec.vm) in
  let domain = Bset.constrain_range domain "k" ~lo:(c 0) ~hi:(c spec.vn) in
  Stmt.make ~name:"S1" ~iters:[ "i"; "k" ] ~domain
    ~accesses:
      [
        Access.write "y" [ v "i"; c 0 ];
        Access.read "y" [ v "i"; c 0 ];
        Access.read "A" [ v "i"; v "k" ];
        Access.read "x" [ v "k"; c 0 ];
      ]

let compile ~config original =
  let tm = config.Sw_arch.Config.mk_m in
  let rows = config.Sw_arch.Config.mesh_rows in
  let cols = config.Sw_arch.Config.mesh_cols in
  let np = panel config in
  let spec =
    {
      original with
      vm = Sw_blas.Matrix.round_up original.vm ~multiple:(row_sweep config);
      vn = Sw_blas.Matrix.round_up original.vn ~multiple:np;
    }
  in
  let stmt = gemv_stmt spec in
  let initial = Tree.initial [ stmt ] in
  let band0 =
    match initial with
    | Tree.Domain (_, Tree.Band (b, Tree.Leaf)) -> b
    | _ -> assert false
  in
  (* rows: tile by tm, then by mesh cols and mesh rows; bind to Rid/Cid *)
  let iband, kband = Transform.split_off band0 ~var:"i" in
  let ti_band, point_i = Transform.tile iband ~sizes:[ tm ] ~names:[ "ti" ] in
  let t1_band, ci_band =
    Transform.strip_mine ti_band ~var:"ti" ~factor:cols ~outer:"t1"
  in
  let bi_band, ri_band =
    Transform.strip_mine t1_band ~var:"t1" ~factor:rows ~outer:"bi"
  in
  let ri_band = Transform.bind ri_band ~var:"t1" Tree.Bind_rid in
  let ci_band = Transform.bind ci_band ~var:"ti" Tree.Bind_cid in
  (* x: panels of np *)
  let ko_band, point_k = Transform.tile kband ~sizes:[ np ] ~names:[ "ko" ] in
  (* row offset of this CPE's tile: tm * (rows*cols*bi + cols*t1 + ti) *)
  let row_lo =
    tm *: (((rows * cols) *: v "bi") +: (cols *: v "t1") +: v "ti")
  in
  ignore point_i;
  ignore point_k;
  let dma ~array ~spm ~row_lo ~col_lo ~rows ~cols ~reply ~put =
    let d =
      {
        Comm.array;
        spm = Comm.buf spm;
        batch = None;
        row_lo;
        col_lo;
        rows;
        cols;
        reply;
        reply_parity = None;
      }
    in
    if put then Comm.Dma_put d else Comm.Dma_get d
  in
  let wait reply = Comm.Wait { reply; reply_parity = None } in
  let rma ~dir ~src ~dst ~root ~rs ~rr =
    Comm.Rma_bcast
      {
        Comm.dir;
        src = Comm.buf src;
        dst = Comm.buf dst;
        rows = np;
        cols = 1;
        root = c root;
        reply_s = rs;
        reply_r = rr;
        reply_parity = None;
      }
  in
  let ext name comm = { Tree.ext_name = name; comm } in
  let f ?preds stmts = Tree.filter ?preds stmts in
  let fleaf name = (f [ name ], Tree.leaf) in
  let on_origin =
    [ Pred.eq (Aff.param "Rid") (c 0); Pred.eq (Aff.param "Cid") (c 0) ]
  in
  let kernel =
    Comm.Kernel
      {
        Comm.c = Comm.buf "ldm_y";
        a = Comm.buf "ldm_Av";
        b = Comm.buf "ldm_x2";
        m = tm;
        n = 1;
        k = np;
        alpha = spec.valpha;
        accumulate = true;
        ta = false;
        tb = false;
        style = Comm.Asm;
      }
  in
  let k_chain =
    Tree.Band
      ( ko_band,
        Tree.extension
          [
            (* the x panel: fetched once by CPE (0,0), then all-broadcast
               as a row broadcast followed by column broadcasts (Fig. 8c) *)
            ext "getX"
              (dma ~array:"x" ~spm:"ldm_x0" ~row_lo:(np *: v "ko")
                 ~col_lo:(c 0) ~rows:np ~cols:1 ~reply:"rX" ~put:false);
            ext "wX" (wait "rX");
            ext "syncR" Comm.Sync;
            ext "rbX"
              (rma ~dir:`Row ~src:"ldm_x0" ~dst:"ldm_x1" ~root:0 ~rs:"rXs"
                 ~rr:"rXr");
            ext "w_rbXs" (wait "rXs");
            ext "w_rbXr" (wait "rXr");
            ext "syncC" Comm.Sync;
            ext "cbX"
              (rma ~dir:`Col ~src:"ldm_x1" ~dst:"ldm_x2" ~root:0 ~rs:"rXs2"
                 ~rr:"rXr2");
            ext "w_cbXs" (wait "rXs2");
            ext "w_cbXr" (wait "rXr2");
            ext "getAv"
              (dma ~array:"A" ~spm:"ldm_Av" ~row_lo ~col_lo:(np *: v "ko")
                 ~rows:tm ~cols:np ~reply:"rAv" ~put:false);
            ext "wAv" (wait "rAv");
          ]
          (Tree.sequence
             [
               (f ~preds:on_origin [ "getX" ], Tree.leaf);
               (f ~preds:on_origin [ "wX" ], Tree.leaf);
               fleaf "syncR";
               fleaf "rbX";
               fleaf "w_rbXs";
               fleaf "w_rbXr";
               fleaf "syncC";
               fleaf "cbX";
               fleaf "w_cbXs";
               fleaf "w_cbXr";
               fleaf "getAv";
               fleaf "wAv";
               ( f [ "S1" ],
                 Tree.mark "gemv_kernel" (Tree.Band (point_k, Tree.leaf)) );
             ]) )
  in
  let y_exts =
    [
      ext "getY"
        (dma ~array:"y" ~spm:"ldm_y" ~row_lo ~col_lo:(c 0) ~rows:tm ~cols:1
           ~reply:"rYg" ~put:false);
      ext "wYg" (wait "rYg");
    ]
    @ (if spec.vbeta <> 1.0 then
         [
           ext "scaleY"
             (Comm.Spm_map
                {
                  target = Comm.buf "ldm_y";
                  rows = tm;
                  cols = 1;
                  fn = Printf.sprintf "scale:%.17g" spec.vbeta;
                });
         ]
       else [])
    @ [
        ext "putY"
          (dma ~array:"y" ~spm:"ldm_y" ~row_lo ~col_lo:(c 0) ~rows:tm ~cols:1
             ~reply:"rYp" ~put:true);
        ext "wYp" (wait "rYp");
      ]
  in
  let block =
    Tree.extension y_exts
      (Tree.sequence
         ([ fleaf "getY"; fleaf "wYg" ]
         @ (if spec.vbeta <> 1.0 then [ fleaf "scaleY" ] else [])
         @ [ (f [ "S1" ], k_chain); fleaf "putY"; fleaf "wYp" ]))
  in
  let tree =
    Tree.domain [ stmt ]
      (Tree.Band
         (bi_band, Tree.Band (ri_band, Tree.Band (ci_band, block))))
  in
  (match Tree.validate tree with
  | Ok () -> ()
  | Error e -> fail "invalid GEMV tree: %s" e);
  let marks = function
    | "gemv_kernel" -> Some [ Sw_ast.Ast.Op kernel ]
    | _ -> None
  in
  let body =
    try
      Sw_ast.Codegen.generate ~marks
        ~mesh:(config.Sw_arch.Config.mesh_rows, config.Sw_arch.Config.mesh_cols)
        tree
    with Sw_ast.Codegen.Codegen_error e -> fail "codegen: %s" e
  in
  let program =
    {
      Sw_ast.Ast.prog_name = "swgemv";
      params = [ ("M", spec.vm); ("N", spec.vn) ];
      arrays =
        [
          { Sw_ast.Ast.array_name = "A"; dims = [ spec.vm; spec.vn ] };
          { Sw_ast.Ast.array_name = "x"; dims = [ spec.vn; 1 ] };
          { Sw_ast.Ast.array_name = "y"; dims = [ spec.vm; 1 ] };
        ];
      spm_decls =
        [
          { Sw_ast.Ast.buf_name = "ldm_y"; rows = tm; cols = 1; copies = 1 };
          { Sw_ast.Ast.buf_name = "ldm_Av"; rows = tm; cols = np; copies = 1 };
          { Sw_ast.Ast.buf_name = "ldm_x0"; rows = np; cols = 1; copies = 1 };
          { Sw_ast.Ast.buf_name = "ldm_x1"; rows = np; cols = 1; copies = 1 };
          { Sw_ast.Ast.buf_name = "ldm_x2"; rows = np; cols = 1; copies = 1 };
        ];
      replies =
        [ "rX"; "rXs"; "rXr"; "rXs2"; "rXr2"; "rAv"; "rYg"; "rYp" ];
      body;
    }
  in
  { spec; original; config; tree; program }

let flops t = 2 * t.spec.vm * t.spec.vn

let verify ?(seed = 11) t =
  let open Sw_arch in
  let open Sw_blas in
  let a = Matrix.random ~rows:t.spec.vm ~cols:t.spec.vn ~seed in
  let x = Matrix.random ~rows:t.spec.vn ~cols:1 ~seed:(seed + 1) in
  let y = Matrix.random ~rows:t.spec.vm ~cols:1 ~seed:(seed + 2) in
  let mem = Mem.create () in
  let install name (m : Matrix.t) =
    Mem.alloc_init mem name
      ~dims:[ m.Matrix.rows; m.Matrix.cols ]
      ~f:(fun idx -> Matrix.get m idx.(0) idx.(1))
  in
  install "A" a;
  install "x" x;
  install "y" y;
  match Interp.run ~config:t.config ~functional:true ~mem t.program with
  | exception Error.Sim_error e -> Error (Error.to_string e)
  | r when r.Interp.races <> [] ->
      Error (Error.to_string (Error.Race r.Interp.races))
  | _ ->
      let yref = Matrix.copy y in
      Dgemm.gemm ~alpha:t.spec.valpha ~beta:t.spec.vbeta ~a ~b:x ~c:yref;
      let data = Mem.data mem "y" in
      let got =
        Matrix.init ~rows:t.spec.vm ~cols:1 ~f:(fun i _ -> data.(i))
      in
      let diff = Matrix.max_abs_diff yref got in
      let scale =
        Array.fold_left (fun acc v -> Float.max acc (abs_float v)) 1.0
          yref.Matrix.data
      in
      if diff > 1e-9 *. scale then
        Error (Printf.sprintf "max |difference| %.3e (scale %.3e)" diff scale)
      else Ok ()

let measure t =
  let open Sw_arch in
  let mem = Mem.create () in
  List.iter
    (fun (d : Sw_ast.Ast.array_decl) ->
      Mem.alloc mem d.Sw_ast.Ast.array_name ~dims:d.Sw_ast.Ast.dims)
    t.program.Sw_ast.Ast.arrays;
  match Interp.run ~config:t.config ~functional:false ~mem t.program with
  | exception Error.Sim_error e -> raise (Gemv_error (Error.to_string e))
  | r ->
      if r.Interp.races <> [] then
        fail "%s" (Error.to_string (Error.Race r.Interp.races));
      {
        Runner.seconds = r.Interp.seconds;
        gflops = Interp.gflops ~flops:(flops t) ~seconds:r.Interp.seconds;
        exact = true;
      }
