(** Problem specifications accepted by the code generator.

    A specification describes one (optionally batched, optionally fused)
    DGEMM instance [C = alpha * (A x B) + beta * C] with concrete sizes —
    the generator, like the paper's tool, produces code specialized to a
    shape. Shapes that do not meet the decomposition's divisibility
    requirements (M, N multiples of the mesh tile, K of the k-panel; §8.1)
    are zero-padded by {!pad_for}. *)

type fusion =
  | No_fusion
  | Prologue of string
      (** element-wise kernel applied to A before the product (Fig. 12a);
          the paper's example is quantization *)
  | Epilogue of string
      (** element-wise kernel applied to C after the product (Fig. 12b);
          the paper's example is an activation *)

type t = {
  m : int;
  n : int;
  k : int;
  batch : int option;
  alpha : float;
  beta : float;
  ta : bool;  (** use op(A) = A^T: A is stored [k x m] *)
  tb : bool;  (** use op(B) = B^T: B is stored [n x k] *)
  fusion : fusion;
}

val make :
  ?batch:int -> ?alpha:float -> ?beta:float -> ?ta:bool -> ?tb:bool ->
  ?fusion:fusion -> m:int -> n:int -> k:int -> unit -> t
(** Defaults: no batch, [alpha = 1], [beta = 1], no transposes, no fusion.
    [m], [n], [k] are always the logical GEMM extents ([op(A)] is [m x k]).
    Raises [Invalid_argument] on non-positive sizes or unknown fusion
    kernels. *)

val pad_for : t -> Sw_arch.Config.t -> t
(** Round [m], [n] up to the mesh tile ([mesh_rows * mk_m] etc.) and [k] up
    to the k-panel ([mesh_cols * mk_k]), as §8.1 requires ("one can
    manually construct such shapes through zero padding"). *)

val is_aligned : t -> Sw_arch.Config.t -> bool
val flops : t -> int
(** [2 m n k] times the batch size (of this spec's sizes as given). *)

val to_string : t -> string

val to_json : t -> Sw_obs.Json.t
(** The wire image [swgemmd] accepts as [params.spec]: integer [m]/[n]/
    [k], optional [batch], [alpha]/[beta] numbers, [ta]/[tb] booleans and
    at most one of [prologue]/[epilogue] naming an element-wise kernel.
    Omitted optional fields take {!make}'s defaults. *)

val of_json : Sw_obs.Json.t -> (t, string) result
(** Inverse of {!to_json} (total: never raises); validates through
    {!make}, so [of_json (to_json t) = Ok t]. *)
