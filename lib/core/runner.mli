(** Running compiled programs on the simulated cluster.

    {!verify} executes the generated code functionally (real data movement
    through SPM buffers, DMA, RMA and micro kernels) and compares the
    result against the {!Sw_blas} reference — the end-to-end correctness
    argument for the whole pipeline.

    {!verify_resilient} does the same under an injected fault plan
    ({!Sw_arch.Fault}), with bounded retry-with-backoff on reply waits and
    graceful degradation to an MPE re-run when retries are exhausted. Its
    contract is the resilience property tested in [test/test_fault.ml]:
    every run either matches the reference or returns a typed error —
    never a hang, never silent corruption.

    {!measure} produces the timing the experiments report. Small problems
    are simulated exactly; large ones use block-periodic extrapolation: the
    generated code is a product of identical mesh-block executions whose
    duration is affine in the number of k-panels once the software pipeline
    reaches steady state, so two exact block simulations at different
    panel counts determine the whole series. [test/test_core.ml] checks the
    extrapolation against exact simulation. *)

type perf = {
  seconds : float;  (** simulated wall time of the full problem *)
  gflops : float;  (** padded-problem flops / seconds / 1e9 *)
  exact : bool;  (** [false] when block extrapolation was used *)
}

type error =
  | Sim of Sw_arch.Error.t
      (** typed simulation failure: deadlock diagnosis, race list (all
          races, sorted by CPE), bounds, overflow, watchdog, ... *)
  | Mismatch of { batch : int; diff : float; scale : float; spec : string }
      (** functional result diverged from the reference *)

val error_to_string : error -> string

exception Runner_error of error

val verify : ?seed:int -> ?tol:float -> Compile.t -> (unit, error) result
(** Functional run against the reference; [Error] carries the typed
    failure — a [Mismatch], or [Sim (Race ...)] listing {e every} detected
    double-buffering race with its CPE coordinates. Default [tol] is
    [1e-9] (relative). *)

(** {2 Resilient execution} *)

type recovery =
  | No_recovery  (** clean run, no fault impact on control flow *)
  | Retried of int  (** recovered by re-waiting [n] timed-out waits *)
  | Mpe_fallback of { reason : string }
      (** retries exhausted; the problem re-ran on the management core *)

val recovery_to_string : recovery -> string

type resilient = { seconds : float; recovery : recovery }

val verify_resilient :
  ?seed:int ->
  ?tol:float ->
  ?faults:Sw_arch.Fault.t ->
  ?retry:Sw_arch.Interp.retry_policy ->
  ?watchdog:Sw_arch.Engine.watchdog ->
  ?trace:Sw_arch.Trace.t ->
  Compile.t ->
  (resilient, error) result
(** Functional verification under fault injection. [Ok] means the final C
    matches the reference, possibly via recovery (see {!recovery});
    [Error] is always typed — a flipped SPM element surfaces as
    [Mismatch], stale replies as [Sim (Race ...)] or [Mismatch], a
    permanently lost reply without retry budget as [Sim (Deadlock ...)]
    or [Sim (Fault_exhausted ...)]-derived fallback. [retry] defaults to
    {!Sw_arch.Interp.default_retry}. *)

val timing_resilient :
  ?faults:Sw_arch.Fault.t ->
  ?retry:Sw_arch.Interp.retry_policy ->
  ?watchdog:Sw_arch.Engine.watchdog ->
  ?trace:Sw_arch.Trace.t ->
  Compile.t ->
  (resilient, error) result
(** Timing-only counterpart of {!verify_resilient}, for measuring the
    overhead of the recovery path (see [bench resilience]). *)

(** {2 Timing} *)

val measure : ?force_exact:bool -> Compile.t -> perf
(** Timing-only simulation. Raises {!Runner_error} if the run reports
    races, and wraps any {!Sw_arch.Error.Sim_error} (deadlock, bounds,
    ...) as [Runner_error (Sim _)]. *)

val measure_exact : Compile.t -> perf
(** Full simulation regardless of size (slow for large shapes). *)

val traced : Compile.t -> Sw_arch.Trace.t * perf
(** Timing simulation with event tracing enabled: returns the trace of
    every kernel invocation, DMA/RMA transfer and blocked interval together
    with the exact performance. Use {!Sw_arch.Trace.utilization} to measure
    how much communication latency the software pipeline actually hides. *)
