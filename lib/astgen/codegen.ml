open Sw_poly
open Sw_tree

exception Codegen_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

type ctx = {
  stmts : Stmt.t list;  (* all real statements *)
  exts : (string * Comm.t) list;  (* auxiliary statements in scope *)
  active : string list;
  loop_vars : string list;  (* generated loop variables, outermost first *)
  guards : Bset.t;  (* dims = loop_vars; what is known to hold here *)
  stmt_ctx : (string * Bset.t) list;
      (* per real statement: dims = iters @ loop_vars, carrying the domain
         constraints and the equations [loop_var = schedule_expr]. *)
}

let is_real ctx name = List.exists (fun s -> String.equal s.Stmt.name name) ctx.stmts

let active_real ctx =
  List.filter (fun n -> is_real ctx n) ctx.active

(* Inside per-statement contexts, iterator dimensions are renamed with a
   reserved prefix so they can never collide with generated loop variables
   (trees commonly reuse the iterator's name for the point loop). *)
let iter_dim it = "$" ^ it

let iter_sub ctx name =
  match List.find_opt (fun s -> String.equal s.Stmt.name name) ctx.stmts with
  | Some s -> List.map (fun it -> (it, Aff.var (iter_dim it))) s.Stmt.iters
  | None -> fail "unknown statement %s" name

(* Compute the loop bounds of band member [var] (schedule expression [e] per
   statement) for every active real statement and merge them. *)
let member_bounds ctx (m : Tree.member) =
  let per_stmt =
    List.filter_map
      (fun name ->
        let sctx = List.assoc name ctx.stmt_ctx in
        let e =
          match List.assoc_opt name m.Tree.exprs with
          | Some e -> e
          | None -> fail "band member %s lacks schedule for %s" m.Tree.var name
        in
        let e = Aff.subst (iter_sub ctx name) e in
        let sctx = Bset.add_dims sctx [ m.Tree.var ] in
        let sctx = Bset.add_aff_eq sctx (Aff.sub (Aff.var m.Tree.var) e) in
        let lbs, ubs =
          Bset.dim_bounds sctx ~dim:m.Tree.var ~using:ctx.loop_vars
        in
        if lbs = [] || ubs = [] then
          fail "no finite bounds for loop %s (statement %s)" m.Tree.var name;
        Some
          ( name,
            sctx,
            List.map (Bset.bound_to_aff sctx ~round:`Ceil) lbs,
            List.map (Bset.bound_to_aff sctx ~round:`Floor) ubs ))
      (active_real ctx)
  in
  match per_stmt with
  | [] -> fail "band %s with no active real statement" m.Tree.var
  | (_, _, lbs0, ubs0) :: rest ->
      let norm l = List.sort_uniq compare (List.map Aff.to_string l) in
      List.iter
        (fun (name, _, lbs, ubs) ->
          if norm lbs <> norm lbs0 || norm ubs <> norm ubs0 then
            fail
              "statements disagree on bounds of loop %s (e.g. %s); schedule \
               them in separate sequence branches"
              m.Tree.var name)
        rest;
      let dedup affs =
        let seen = Hashtbl.create 7 in
        List.filter
          (fun a ->
            let k = Aff.to_string a in
            if Hashtbl.mem seen k then false
            else (
              Hashtbl.add seen k ();
              true))
          affs
      in
      (dedup lbs0, dedup ubs0)

(* Extend every per-statement context and the guard context with the new
   loop variable and its constraints. *)
let push_loop ctx (m : Tree.member) ~value ~lbs ~ubs =
  let v = m.Tree.var in
  let extend_stmt name sctx =
    let sctx = Bset.add_dims sctx [ v ] in
    match List.assoc_opt name m.Tree.exprs with
    | Some e ->
        Bset.add_aff_eq sctx
          (Aff.sub (Aff.var v) (Aff.subst (iter_sub ctx name) e))
    | None -> sctx
  in
  let guards = Bset.add_dims ctx.guards [ v ] in
  let guards =
    match value with
    | Some a -> Bset.add_aff_eq guards (Aff.sub (Aff.var v) a)
    | None ->
        let g =
          List.fold_left
            (fun g lb -> Bset.add_aff_ineq g (Aff.sub (Aff.var v) lb))
            guards lbs
        in
        List.fold_left
          (fun g ub -> Bset.add_aff_ineq g (Aff.sub ub (Aff.var v)))
          g ubs
  in
  {
    ctx with
    loop_vars = ctx.loop_vars @ [ v ];
    guards;
    stmt_ctx = List.map (fun (n, s) -> (n, extend_stmt n s)) ctx.stmt_ctx;
  }

(* Recover the iterator values of statement [name] from the schedule: each
   iterator must be pinned to a single value by the accumulated equations. *)
let solve_iterators ctx name =
  let s =
    match List.find_opt (fun s -> String.equal s.Stmt.name name) ctx.stmts with
    | Some s -> s
    | None -> fail "unknown statement %s" name
  in
  let sctx = List.assoc name ctx.stmt_ctx in
  List.map
    (fun it ->
      let lbs, ubs =
        Bset.dim_bounds sctx ~dim:(iter_dim it) ~using:ctx.loop_vars
      in
      (* The iterator is determined when a lower and an upper bound coincide
         exactly (same linear expression and denominator). *)
      let value =
        List.find_opt
          (fun (u : Bset.bound) ->
            List.exists
              (fun (l : Bset.bound) ->
                l.Bset.den = u.Bset.den && Lin.equal l.Bset.expr u.Bset.expr)
              lbs)
          ubs
      in
      match value with
      | Some u when u.Bset.den = 1 ->
          (it, Bset.bound_to_aff sctx ~round:`Floor u)
      | Some _ | None ->
          fail "iterator %s of %s is not determined by the schedule" it name)
    s.Stmt.iters

let apply_filter ctx (flt : Tree.filter) =
  let known name =
    is_real ctx name || List.mem_assoc name ctx.exts
  in
  List.iter
    (fun n -> if not (known n) then fail "filter on unknown statement %s" n)
    flt.Tree.stmts;
  let active = List.filter (fun n -> List.mem n ctx.active) flt.Tree.stmts in
  (* A predicate whose free variables are all generated loop variables can be
     emitted as a guard (and pruned when already implied). A predicate over
     statement iterators instead acts through the statement contexts: it
     narrows the bounds of the bands generated below (this is how peeling
     filters such as [floor(k/256) = 0] take effect). *)
  let emittable p =
    List.for_all
      (fun v -> List.mem v ctx.loop_vars)
      (Aff.free_vars p.Pred.lhs @ Aff.free_vars p.Pred.rhs)
  in
  let guard_preds, iter_preds = List.partition emittable flt.Tree.preds in
  let remaining =
    List.filter
      (fun p ->
        not
          (List.for_all
             (fun ineq -> Bset.implies_aff_ineq ctx.guards ineq)
             (Pred.to_ineqs p)))
      guard_preds
  in
  let guards =
    List.fold_left
      (fun g p ->
        List.fold_left (fun g ineq -> Bset.add_aff_ineq g ineq) g
          (Pred.to_ineqs p))
      ctx.guards guard_preds
  in
  let stmt_ctx =
    List.map
      (fun (n, sctx) ->
        let sub = if is_real ctx n then iter_sub ctx n else [] in
        ( n,
          List.fold_left
            (fun sctx p ->
              let p = Pred.subst sub p in
              List.fold_left
                (fun sctx ineq -> Bset.add_aff_ineq sctx ineq)
                sctx (Pred.to_ineqs p))
            sctx (guard_preds @ iter_preds) ))
      ctx.stmt_ctx
  in
  ({ ctx with active; guards; stmt_ctx }, remaining)

let rec gen_node ~marks ctx (t : Tree.t) : Ast.block =
  match t with
  | Tree.Domain _ -> fail "nested domain node"
  | Tree.Leaf ->
      List.concat_map
        (fun name ->
          match List.assoc_opt name ctx.exts with
          | Some comm -> [ Ast.Op comm ]
          | None ->
              if is_real ctx name then
                [ Ast.User { name; args = solve_iterators ctx name } ]
              else [])
        ctx.active
  | Tree.Mark (name, child) -> (
      match marks name with
      | Some block -> Ast.Comment (Printf.sprintf "mark: %s" name) :: block
      | None -> gen_node ~marks ctx child)
  | Tree.Extension (es, child) ->
      let names = List.map (fun e -> e.Tree.ext_name) es in
      let ctx =
        {
          ctx with
          exts = ctx.exts @ List.map (fun e -> (e.Tree.ext_name, e.Tree.comm)) es;
          active = ctx.active @ names;
        }
      in
      gen_node ~marks ctx child
  | Tree.Filter (flt, child) ->
      let ctx', remaining = apply_filter ctx flt in
      let inner = gen_node ~marks ctx' child in
      if remaining = [] then inner
      else if inner = [] then []
      else [ Ast.If { conds = remaining; body = inner } ]
  | Tree.Sequence children ->
      List.concat_map
        (fun (flt, child) -> gen_node ~marks ctx (Tree.Filter (flt, child)))
        children
  | Tree.Band (b, child) -> gen_members ~marks ctx b.Tree.members child

and gen_members ~marks ctx members child =
  match members with
  | [] -> gen_node ~marks ctx child
  | _ :: _
    when active_real ctx <> []
         && List.for_all
              (fun name -> Bset.is_empty (List.assoc name ctx.stmt_ctx))
              (active_real ctx) ->
      (* Every active statement's context is infeasible (e.g. a peeling
         filter that degenerates to a constant contradiction, as happens
         when the strip-mining factor is 1): the whole subtree — including
         any auxiliary statements scheduled under this band — is dead.
         Bound extraction alone would not notice when the contradiction
         does not involve the band variable. *)
      []
  | m :: rest -> (
      match m.Tree.bind with
      | Tree.Bind_rid | Tree.Bind_cid ->
          let coord =
            match m.Tree.bind with
            | Tree.Bind_rid -> "Rid"
            | Tree.Bind_cid -> "Cid"
            | Tree.Unbound -> assert false
          in
          (* The member's variable takes the mesh coordinate; the schedule
             equation then pins the statement instances each CPE executes. *)
          let value = Aff.param coord in
          let ctx = push_loop ctx m ~value:(Some value) ~lbs:[] ~ubs:[] in
          [
            Ast.Let
              {
                var = m.Tree.var;
                value;
                body = gen_members ~marks ctx rest child;
              };
          ]
      | Tree.Unbound -> (
          let lbs, ubs = member_bounds ctx m in
          match (lbs, ubs) with
          | [ lb ], [ ub ] when Aff.equal lb ub ->
              let ctx = push_loop ctx m ~value:(Some lb) ~lbs ~ubs in
              [
                Ast.Let
                  {
                    var = m.Tree.var;
                    value = lb;
                    body = gen_members ~marks ctx rest child;
                  };
              ]
          | _ ->
              let ctx = push_loop ctx m ~value:None ~lbs ~ubs in
              [
                Ast.For
                  {
                    var = m.Tree.var;
                    lbs;
                    ubs;
                    body = gen_members ~marks ctx rest child;
                  };
              ]))

let generate ?(marks = fun _ -> None) ~mesh tree =
  let rows, cols = mesh in
  match tree with
  | Tree.Domain (stmts, child) ->
      let all_params =
        List.sort_uniq String.compare
          (List.concat_map Stmt.params stmts @ [ "Rid"; "Cid" ])
      in
      let guards = Bset.universe ~params:all_params ~dims:[] in
      let constrain_coord g name limit =
        let g = Bset.add_aff_ineq g (Aff.param name) in
        Bset.add_aff_ineq g
          (Aff.sub (Aff.const (limit - 1)) (Aff.param name))
      in
      let guards = constrain_coord guards "Rid" rows in
      let guards = constrain_coord guards "Cid" cols in
      let stmt_ctx =
        List.map
          (fun s ->
            (* Rebuild each statement's domain over the full parameter list
               (so Rid/Cid can appear in schedule equations) and with the
               iterator dimensions renamed into the reserved namespace. *)
            let base =
              Bset.universe ~params:all_params
                ~dims:(List.map iter_dim s.Stmt.iters)
            in
            let base =
              List.fold_left
                (fun b e ->
                  let old = s.Stmt.domain in
                  let remap =
                    Lin.of_terms
                      (List.map
                         (fun (v, c) ->
                           match v with
                           | Lin.D i -> (Lin.D i, c)
                           | Lin.P i ->
                               let pname = (Bset.params old).(i) in
                               (Bset.param_var base pname, c)
                           | Lin.X _ ->
                               fail "existentials in domain of %s" s.Stmt.name)
                         (Lin.terms e))
                      (Lin.constant e)
                  in
                  Bset.add_ineq b remap)
                base (Bset.ineqs s.Stmt.domain)
            in
            let base =
              List.fold_left
                (fun b e ->
                  let old = s.Stmt.domain in
                  let remap =
                    Lin.of_terms
                      (List.map
                         (fun (v, c) ->
                           match v with
                           | Lin.D i -> (Lin.D i, c)
                           | Lin.P i ->
                               let pname = (Bset.params old).(i) in
                               (Bset.param_var base pname, c)
                           | Lin.X _ ->
                               fail "existentials in domain of %s" s.Stmt.name)
                         (Lin.terms e))
                      (Lin.constant e)
                  in
                  Bset.add_eq b remap)
                base (Bset.eqs s.Stmt.domain)
            in
            (s.Stmt.name, base))
          stmts
      in
      let ctx =
        {
          stmts;
          exts = [];
          active = List.map (fun s -> s.Stmt.name) stmts;
          loop_vars = [];
          guards;
          stmt_ctx;
        }
      in
      gen_node ~marks ctx child
  | _ -> fail "schedule tree must start with a domain node"

(* Pass-compatible entry point: the pass manager threads results rather
   than exceptions between stages, so validation failures and codegen
   errors surface as [Error] and the driver decides how to report them. *)
let generate_checked ?marks ~mesh tree =
  match Sw_tree.Tree.validate tree with
  | Error e -> Error (Printf.sprintf "invalid schedule tree: %s" e)
  | Ok () -> (
      match generate ?marks ~mesh tree with
      | block -> Ok block
      | exception Codegen_error e -> Error e)
