(** AST generation: scanning a schedule tree into executable/printable code
    (§7.1 of the paper).

    The generator walks the tree, materializing every band member as a loop
    whose bounds are computed polyhedrally from the statement domains and
    the accumulated schedule prefix ({!Sw_poly.Bset.dim_bounds}), mesh-bound
    members as bindings of [Rid]/[Cid], filters as guards (pruned when the
    accumulated context already implies them), extension statements as
    communication ops, and leaves as statement instances whose iterator
    values are recovered by inverting the schedule.

    A mark node (§7.2) may be intercepted through [marks]: returning
    [Some block] replaces the whole subtree below the mark — this is how the
    inline-assembly micro kernel is spliced into the generated code. *)

open Sw_tree

exception Codegen_error of string

val generate :
  ?marks:(string -> Ast.block option) ->
  mesh:int * int ->
  Tree.t ->
  Ast.block
(** [generate ~mesh tree] produces SPMD CPE code for a [rows x cols] mesh.
    Raises {!Codegen_error} when a band bound cannot be derived, statements
    disagree on a shared loop's bounds, or a leaf statement's iterators are
    not uniquely determined by the schedule. *)

val generate_checked :
  ?marks:(string -> Ast.block option) ->
  mesh:int * int ->
  Tree.t ->
  (Ast.block, string) result
(** Pass-compatible entry point used by the [astgen] pass of the pass
    manager: validates the tree first and turns {!Codegen_error} into
    [Error] instead of raising. *)
