type t = {
  name : string;
  mesh_rows : int;
  mesh_cols : int;
  spm_bytes : int;
  cpe_freq_hz : float;
  cpe_simd_flops_per_cycle : float;
  cpe_naive_flops_per_cycle : float;
  micro_kernel_efficiency : float;
  kernel_call_overhead_s : float;
  mem_bw_bytes_per_s : float;
  dma_latency_s : float;
  rma_bw_bytes_per_s : float;
  rma_latency_s : float;
  sync_latency_s : float;
  mesh_startup_s : float;
  ew_cpe_cycles_per_elem : float;
  mpe_stream_bw_bytes_per_s : float;
  mpe_freq_hz : float;
  mpe_ew_cycles_per_elem : (string * float) list;
  mk_m : int;
  mk_n : int;
  mk_k : int;
}

let sw26010pro =
  {
    name = "SW26010Pro";
    mesh_rows = 8;
    mesh_cols = 8;
    spm_bytes = 256 * 1024;
    (* 64 CPEs x 2.22 GHz x 16 double flops/cycle = 2273.28 Gflops peak *)
    cpe_freq_hz = 2.22e9;
    cpe_simd_flops_per_cycle = 16.0;
    cpe_naive_flops_per_cycle = 0.60;
    micro_kernel_efficiency = 0.98;
    kernel_call_overhead_s = 0.08e-6;
    mem_bw_bytes_per_s = 34.0e9;
    dma_latency_s = 1.5e-6;
    rma_bw_bytes_per_s = 80.0e9;
    rma_latency_s = 0.1e-6;
    sync_latency_s = 0.10e-6;
    mesh_startup_s = 120.0e-6;
    ew_cpe_cycles_per_elem = 1.0;
    mpe_stream_bw_bytes_per_s = 8.0e9;
    mpe_freq_hz = 2.1e9;
    mpe_ew_cycles_per_elem =
      [ ("quant", 6.0); ("relu", 4.0); ("tanh", 12.0); ("sigmoid", 11.0); ("id", 1.0) ];
    mk_m = 64;
    mk_n = 64;
    mk_k = 32;
  }

let tiny ?(mesh = 2) ?cols ?(mk = (4, 4, 2)) () =
  let mk_m, mk_n, mk_k = mk in
  let cols = match cols with Some c -> c | None -> mesh in
  {
    sw26010pro with
    name = Printf.sprintf "tiny-%dx%d" mesh cols;
    mesh_rows = mesh;
    mesh_cols = cols;
    spm_bytes = 16 * 1024;
    mk_m;
    mk_n;
    mk_k;
  }

let peak_flops_per_s c =
  float_of_int (c.mesh_rows * c.mesh_cols)
  *. c.cpe_freq_hz *. c.cpe_simd_flops_per_cycle

let peak_gflops c = peak_flops_per_s c /. 1e9

let micro_kernel_seconds c ~style ~m ~n ~k =
  let flops = float_of_int (2 * m * n * k) in
  let rate =
    match style with
    | `Asm -> c.cpe_freq_hz *. c.cpe_simd_flops_per_cycle *. c.micro_kernel_efficiency
    | `Naive -> c.cpe_freq_hz *. c.cpe_naive_flops_per_cycle
  in
  (flops /. rate) +. c.kernel_call_overhead_s

(* Cost of running an m x n x k GEMM on the management core instead of the
   mesh — the graceful-degradation path when CPE-side recovery is
   exhausted. The MPE is modelled as a scalar FMA core bounded by its
   stream bandwidth (A + B read, C read+write, 8 bytes each). *)
let mpe_gemm_seconds c ~m ~n ~k =
  let compute = float_of_int (2 * m * n * k) /. (c.mpe_freq_hz *. 2.0) in
  let bytes = 8 * ((m * k) + (k * n) + (2 * m * n)) in
  let stream = float_of_int bytes /. c.mpe_stream_bw_bytes_per_s in
  Float.max compute stream

(* Elementwise functions with no entry in the model table cost a
   conservative 8 cycles/elem. That fallback is logged (once per
   function name) so a missing calibration entry is visible rather than
   silently absorbed into the MPE estimate. *)
let unknown_ew_cycles = 8.0
let warned_ew_fns : (string, unit) Hashtbl.t = Hashtbl.create 7

let warn_unknown_ew_fn ~config_name fn =
  if not (Hashtbl.mem warned_ew_fns fn) then begin
    Hashtbl.replace warned_ew_fns fn ();
    Printf.eprintf
      "swgemm: warning: elementwise fn %S has no cycles/elem entry in the \
       %s model; assuming %g cycles/elem\n%!"
      fn config_name unknown_ew_cycles
  end

let mpe_ew_seconds c ~fn ~elems =
  let base_fn =
    (* parameterized kernels (scale:<c>) cost like "id" *)
    if String.starts_with ~prefix:"scale:" fn then "id" else fn
  in
  let cycles =
    match List.assoc_opt base_fn c.mpe_ew_cycles_per_elem with
    | Some x -> x
    | None ->
        warn_unknown_ew_fn ~config_name:c.name base_fn;
        unknown_ew_cycles
  in
  let stream = float_of_int (16 * elems) /. c.mpe_stream_bw_bytes_per_s in
  let compute = float_of_int elems *. cycles /. c.mpe_freq_hz in
  Float.max stream compute

let validate c =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if c.mesh_rows <= 0 || c.mesh_cols <= 0 then err "empty mesh"
  else if c.mk_m <= 0 || c.mk_n <= 0 || c.mk_k <= 0 then err "empty micro kernel"
  else if
    c.cpe_freq_hz <= 0.0 || c.mem_bw_bytes_per_s <= 0.0
    || c.rma_bw_bytes_per_s <= 0.0
    || c.micro_kernel_efficiency <= 0.0
    || c.micro_kernel_efficiency > 1.0
  then err "non-positive rate or efficiency out of (0, 1]"
  else if List.exists (fun (_, cyc) -> cyc <= 0.0) c.mpe_ew_cycles_per_elem
  then err "non-positive cycles/elem in the MPE elementwise table"
  else begin
    (* the nine local buffers of §6.3: C + 2x(A dma, B dma, A bcast, B bcast) *)
    let bytes =
      8
      * ((c.mk_m * c.mk_n)
        + (4 * c.mk_m * c.mk_k)
        + (4 * c.mk_k * c.mk_n))
    in
    if bytes > c.spm_bytes then
      err "micro kernel tiles (%d bytes double-buffered) overflow the %d-byte SPM"
        bytes c.spm_bytes
    else Ok ()
  end
