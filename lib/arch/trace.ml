type kind =
  | Kernel
  | Spm_op
  | Dma of { bytes : int; put : bool }
  | Rma of { bytes : int; sender : bool }
  | Wait_reply of { reply : string; rma : bool }
  | Barrier

let is_wait = function Wait_reply _ -> true | _ -> false

type event = { rid : int; cid : int; kind : kind; start : float; finish : float }

type t = { mutable evs : event list; mutable count : int }

let create () = { evs = []; count = 0 }

let record t e =
  t.evs <- e :: t.evs;
  t.count <- t.count + 1

let events t = List.rev t.evs

let instant e = e.finish <= e.start

let busy t ~rid ~cid ~kind =
  List.fold_left
    (fun acc e ->
      if e.rid = rid && e.cid = cid && kind e.kind then
        acc +. (e.finish -. e.start)
      else acc)
    0.0 t.evs

type utilization = {
  span : float;
  kernel_frac : float;
  blocked_frac : float;
  dma_bytes : int;
  rma_bytes : int;
}

let empty_utilization =
  { span = 0.0; kernel_frac = 0.0; blocked_frac = 0.0; dma_bytes = 0; rma_bytes = 0 }

let utilization t ~mesh:(rows, cols) =
  if t.evs = [] then empty_utilization
  else begin
  let lo = ref infinity and hi = ref neg_infinity in
  let dma_bytes = ref 0 and rma_bytes = ref 0 in
  List.iter
    (fun e ->
      lo := Float.min !lo e.start;
      hi := Float.max !hi e.finish;
      match e.kind with
      | Dma { bytes; _ } -> dma_bytes := !dma_bytes + bytes
      | Rma { bytes; sender = true } -> rma_bytes := !rma_bytes + bytes
      | Rma _ | Kernel | Spm_op | Wait_reply _ | Barrier -> ())
    t.evs;
  (* a trace of only instants has zero span; every frac guards against
     dividing by it and reports an all-zero utilization *)
  let span = if !hi > !lo then !hi -. !lo else 0.0 in
  let ncpe = float_of_int (rows * cols) in
  let frac kind =
    if span <= 0.0 then 0.0
    else
      let total = ref 0.0 in
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          total := !total +. busy t ~rid:r ~cid:c ~kind
        done
      done;
      !total /. (span *. ncpe)
  in
  {
    span;
    kernel_frac = frac (function Kernel -> true | _ -> false);
    blocked_frac = frac (function Wait_reply _ | Barrier -> true | _ -> false);
    dma_bytes = !dma_bytes;
    rma_bytes = !rma_bytes;
  }
  end

let gantt t ~rid ~cid ~width =
  let evs = List.filter (fun e -> e.rid = rid && e.cid = cid) t.evs in
  match evs with
  | [] -> String.make width '.'
  | _ ->
      let lo = List.fold_left (fun a e -> Float.min a e.start) infinity evs in
      let hi = List.fold_left (fun a e -> Float.max a e.finish) neg_infinity evs in
      let span = Float.max (hi -. lo) 1e-12 in
      let lane = Bytes.make width '.' in
      let prio = function
        | Kernel -> (4, 'K')
        | Spm_op -> (3, 'E')
        | Rma _ -> (2, 'R')
        | Dma _ -> (2, 'D')
        | Wait_reply _ -> (1, 'w')
        | Barrier -> (1, 'b')
      in
      let cell_prio = Array.make width 0 in
      List.iter
        (fun e ->
          let p, ch = prio e.kind in
          let a =
            int_of_float (Float.of_int width *. (e.start -. lo) /. span)
          in
          let b =
            int_of_float (Float.of_int width *. (e.finish -. lo) /. span)
          in
          for i = max 0 a to min (width - 1) (max a b) do
            if p > cell_prio.(i) then begin
              cell_prio.(i) <- p;
              Bytes.set lane i ch
            end
          done)
        evs;
      Bytes.to_string lane

let summary t ~mesh =
  let u = utilization t ~mesh in
  Printf.sprintf
    "span %.3f ms | kernel busy %.1f%% | blocked %.1f%% | DMA %.2f MB | RMA \
     %.2f MB"
    (1000.0 *. u.span)
    (100.0 *. u.kernel_frac)
    (100.0 *. u.blocked_frac)
    (float_of_int u.dma_bytes /. 1048576.0)
    (float_of_int u.rma_bytes /. 1048576.0)
