(** Typed errors of the simulated cluster.

    Every failure mode of a simulated run — deadlock, double-buffering
    race, out-of-bounds DMA, SPM overflow, exhausted fault recovery,
    watchdog expiry — is a constructor of {!t} carrying structured
    forensics, so harnesses (the resilience property, the CLI, CI) can
    match on the cause instead of parsing strings. Simulation code raises
    {!Sim_error}. *)

type conflict = {
  buffer : string;
  copy : int;
  kind : [ `Write_read | `Write_write | `Read_write ];
      (** the offending operation, then the earlier overlapping one *)
  op_start : float;
  op_finish : float;
  prev_start : float;
  prev_finish : float;
}
(** One double-buffering violation on one SPM buffer copy. *)

type race = { rid : int; cid : int; conflict : conflict }
(** A conflict located on a CPE of the mesh. *)

type blocked = {
  fiber : string;  (** label of the parked fiber, e.g. ["CPE(2,3)"] *)
  counter : string;  (** reply counter or barrier it is parked on *)
  current : int;  (** the counter's value at quiescence *)
  awaited : int;  (** the value the fiber is waiting for *)
  parked_at : float;  (** simulated time at which it blocked *)
}

type diagnosis = {
  sim_time : float;  (** clock when the event queue drained *)
  events_run : int;
  fibers : blocked list;  (** every fiber still parked, sorted *)
}
(** Quiescence report produced when the event queue drains with fibers
    still parked: who is blocked, on which counter, current vs awaited
    value, and when each fiber parked. *)

type t =
  | Deadlock of diagnosis
  | Race of race list  (** all detected races, deterministically sorted *)
  | Bounds of { array_name : string; detail : string }
  | Overflow of { buffer : string; needed : int; available : int; capacity : int }
  | Fault_exhausted of {
      fiber : string;
      counter : string;
      retries : int;
      sim_time : float;
    }  (** the bounded retry policy gave up on a timed-out wait *)
  | Watchdog of {
      limit : [ `Sim_time of float | `Events of int | `Host_time of float ];
      sim_time : float;
      events_run : int;
    }  (** a runaway simulation was terminated by a budget *)
  | Invalid of string  (** malformed program or protocol misuse *)

exception Sim_error of t

val to_string : t -> string
val conflict_to_string : conflict -> string
val race_to_string : race -> string
val blocked_to_string : blocked -> string
val diagnosis_to_string : diagnosis -> string

val compare_race : race -> race -> int
(** Deterministic order: CPE coordinates, then buffer/copy, then time. *)
