(** Typed errors of the simulated cluster.

    Every failure mode of a simulated run — deadlock, double-buffering
    race, out-of-bounds DMA, SPM overflow, exhausted fault recovery,
    watchdog expiry — is a constructor of {!t} carrying structured
    forensics, so harnesses (the resilience property, the CLI, CI) can
    match on the cause instead of parsing strings. Simulation code raises
    {!Sim_error}. *)

type conflict = {
  buffer : string;
  copy : int;
  kind : [ `Write_read | `Write_write | `Read_write ];
      (** the offending operation, then the earlier overlapping one *)
  op_start : float;
  op_finish : float;
  prev_start : float;
  prev_finish : float;
}
(** One double-buffering violation on one SPM buffer copy. *)

type race = { rid : int; cid : int; conflict : conflict }
(** A conflict located on a CPE of the mesh. *)

type blocked = {
  fiber : string;  (** label of the parked fiber, e.g. ["CPE(2,3)"] *)
  counter : string;  (** reply counter or barrier it is parked on *)
  current : int;  (** the counter's value at quiescence *)
  awaited : int;  (** the value the fiber is waiting for *)
  parked_at : float;  (** simulated time at which it blocked *)
}

type diagnosis = {
  sim_time : float;  (** clock when the event queue drained *)
  events_run : int;
  fibers : blocked list;  (** every fiber still parked, sorted *)
}
(** Quiescence report produced when the event queue drains with fibers
    still parked: who is blocked, on which counter, current vs awaited
    value, and when each fiber parked. *)

type t =
  | Deadlock of diagnosis
  | Race of race list  (** all detected races, deterministically sorted *)
  | Bounds of { array_name : string; detail : string }
  | Overflow of { buffer : string; needed : int; available : int; capacity : int }
  | Fault_exhausted of {
      fiber : string;
      counter : string;
      retries : int;
      sim_time : float;
    }  (** the bounded retry policy gave up on a timed-out wait *)
  | Watchdog of {
      limit : [ `Sim_time of float | `Events of int | `Host_time of float ];
      sim_time : float;
      events_run : int;
    }  (** a runaway simulation was terminated by a budget *)
  | Invalid of string  (** malformed program or protocol misuse *)
  | Timeout of { stage : string; elapsed_s : float; deadline_s : float }
      (** a supervised request ran past its deadline; [stage] names the
          checkpoint that noticed ([admission], [pass:<name>], [store.put],
          ...) *)
  | Overloaded of { in_flight : int; queued : int; limit : int }
      (** admission control shed the request: the in-flight limit was
          reached and the wait queue was full *)
  | Store_corrupt of { key : string; path : string; detail : string }
      (** a persistent-store entry failed its integrity check and was
          quarantined (it is never served) *)
  | Circuit_open of {
      shape_class : string;
      failures : int;
      cooldown_s : float;
    }
      (** the per-shape-class circuit breaker is open after repeated
          failures; requests are rejected (or served degraded) until the
          cooldown elapses *)

exception Sim_error of t

val class_of : t -> string
(** Stable lowercase token naming the variant ([deadlock], [race],
    [bounds], [overflow], [fault_exhausted], [watchdog], [invalid],
    [timeout], [overloaded], [store_corrupt], [circuit_open]). The token
    appears verbatim in the {!to_string} rendering of the same value, so
    logs stay greppable by class. *)

val retryable : t -> bool
(** Whether a fresh attempt could plausibly succeed: transient classes
    ([Fault_exhausted], [Watchdog], [Store_corrupt]) are retryable;
    structural failures and supervisor verdicts are not. *)

val to_string : t -> string
val conflict_to_string : conflict -> string
val race_to_string : race -> string
val blocked_to_string : blocked -> string
val diagnosis_to_string : diagnosis -> string

val compare_race : race -> race -> int
(** Deterministic order: CPE coordinates, then buffer/copy, then time. *)
