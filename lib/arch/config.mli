(** Machine model of one SW26010Pro cluster (core group).

    The paper reports percentages of an undisclosed theoretical peak; every
    absolute constant below is therefore a calibration, chosen once so that
    the simulator reproduces the paper's published ratios (the §8.1
    breakdown means, the §8.2 peak fractions, the batched/fusion speedups)
    and then frozen. [test/test_calibration.ml] asserts the model stays
    inside the documented bands. See DESIGN.md §4. *)

type t = {
  name : string;
  mesh_rows : int;  (** 8 on SW26010Pro *)
  mesh_cols : int;
      (** 8 on SW26010Pro; rectangular meshes are accepted — the K panel is
          split into [min rows cols] chunks and the row/column RMA
          broadcasts root at mesh coordinates below that bound *)
  spm_bytes : int;  (** 256 KiB per CPE on SW26010Pro (§2.1) *)
  cpe_freq_hz : float;
  cpe_simd_flops_per_cycle : float;
      (** double-precision flops/cycle of the 512-bit FMA pipeline *)
  cpe_naive_flops_per_cycle : float;
      (** scalar, unpipelined flops/cycle of compiler-generated loop code *)
  micro_kernel_efficiency : float;
      (** fraction of SIMD peak the vendor assembly kernel sustains *)
  kernel_call_overhead_s : float;
      (** per-invocation cost: call, loop control, pipeline ramp *)
  mem_bw_bytes_per_s : float;
      (** shared memory-controller bandwidth of the cluster *)
  dma_latency_s : float;  (** fixed per-message DMA latency *)
  rma_bw_bytes_per_s : float;  (** per row/column RMA link *)
  rma_latency_s : float;
  sync_latency_s : float;  (** full-mesh barrier *)
  mesh_startup_s : float;  (** athread_spawn cost, paid per mesh launch *)
  ew_cpe_cycles_per_elem : float;
      (** vectorized element-wise op cost on a CPE (fused prologue/epilogue) *)
  mpe_stream_bw_bytes_per_s : float;
      (** MPE effective streaming bandwidth (baseline element-wise passes) *)
  mpe_freq_hz : float;
  mpe_ew_cycles_per_elem : (string * float) list;
      (** per element-wise kernel: scalar MPE cycles per element *)
  mk_m : int;  (** micro kernel shape, 64 x 64 x 32 on SW26010Pro (§7.2) *)
  mk_n : int;
  mk_k : int;
}

val sw26010pro : t
(** The calibrated SW26010Pro model. *)

val tiny : ?mesh:int -> ?cols:int -> ?mk:int * int * int -> unit -> t
(** A scaled-down configuration for fast functional tests: [mesh x cols]
    CPEs (default 2x2; [cols] defaults to [mesh]) and a small micro kernel
    (default 4x4x2). Timing constants are inherited from {!sw26010pro}. *)

val peak_flops_per_s : t -> float
(** Cluster SIMD peak: [rows * cols * freq * simd_flops_per_cycle]. *)

val peak_gflops : t -> float

val micro_kernel_seconds : t -> style:[ `Asm | `Naive ] -> m:int -> n:int -> k:int -> float
(** Wall time of one micro-kernel invocation on one CPE. *)

val mpe_gemm_seconds : t -> m:int -> n:int -> k:int -> float
(** Cost of running the whole GEMM on the management core: the
    graceful-degradation path when mesh-side recovery is exhausted. Max of
    scalar-FMA compute time and streaming time. *)

val mpe_ew_seconds : t -> fn:string -> elems:int -> float
(** Baseline cost of an element-wise pass over [elems] doubles on the MPE:
    the max of the streaming time (read + write) and the scalar compute
    time. *)

val validate : t -> (unit, string) result
(** Reject meaningless models (empty mesh, non-positive rates, micro
    kernel tiles that overflow the SPM with double buffering). Rectangular
    meshes are valid. *)
