(** Bridge from simulated-cluster traces to the observability layer.

    {!samples}/{!profile} feed {!Sw_obs.Profile} — each CPE becomes one
    track, kernel and SPM element-wise events become compute, DMA/RMA
    transfers become communication at their pipeline level, and reply
    waits become exposed latency attributed by the level that armed the
    reply. Receiver-side RMA events are excluded (the sender's transfer
    already carries the interval). {!to_chrome} lays the same trace out
    as Chrome trace-event tracks — pid {!Sw_obs.Span.sim_pid}, one tid
    per CPE in row-major order — for Perfetto. *)

val track_name : rid:int -> cid:int -> string

val samples : Trace.t -> Sw_obs.Profile.sample list
val profile : Trace.t -> Sw_obs.Profile.t

val to_chrome : Trace.t -> mesh:int * int -> Sw_obs.Span.sink -> unit
(** Appends thread/process naming metadata and one event per trace entry
    (zero-duration entries become instants). *)
