(** Discrete-event simulation engine.

    Each CPE of the mesh runs as a cooperative fiber implemented with OCaml
    effects: a fiber performs {!delay} to consume simulated time and
    {!await} to block on a monotone counter (the reply counters of the
    athread interfaces). Bandwidth-shared resources (the memory controller,
    the RMA links) are modelled as {!channel}s that serialize transfers;
    completions run as scheduled closures and increment counters, waking any
    blocked fibers.

    The scheduler is deterministic: events fire in (time, creation sequence)
    order, so simulations are exactly reproducible — including under fault
    injection, whose decisions are drawn in event order from the plan's
    seeded PRNG.

    Failures are typed ({!Error.Sim_error}): when the event queue drains
    with fibers still parked, {!run} raises a {!Error.Deadlock} whose
    diagnosis names every blocked fiber, the counter it waits on, the
    current vs awaited value, and the simulated time at which it parked. A
    {!watchdog} bounds runaway simulations by simulated time, event count,
    or host wall-clock. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds. *)

val spawn : ?label:string -> t -> (unit -> unit) -> unit
(** Register a fiber to start at the current simulation time. [label]
    identifies the fiber in deadlock diagnoses (e.g. ["CPE(2,3)"]). *)

val run : t -> float
(** Execute events until none remain; returns the final clock. Raises
    {!Error.Sim_error} with a {!Error.Deadlock} diagnosis if some fiber is
    still blocked on a counter, or {!Error.Watchdog} when a budget set via
    {!set_watchdog} is exceeded. *)

val schedule : t -> after:float -> (unit -> unit) -> unit
(** Schedule a plain closure (not a fiber: it must not perform effects). *)

val events_run : t -> int
(** Events executed so far (across {!run} calls). *)

(** {2 Watchdog} *)

type watchdog = {
  max_sim_s : float option;  (** simulated-time budget *)
  max_events : int option;  (** event-count budget *)
  max_host_s : float option;  (** host wall-clock budget (CPU seconds) *)
}

val no_watchdog : watchdog

val set_watchdog : t -> watchdog -> unit
(** Budgets are checked as events fire; exceeding one raises a typed
    {!Error.Watchdog} instead of spinning. *)

(** {2 Counters} *)

type counter

val new_counter : ?name:string -> t -> counter
(** Counters are registered with the engine so deadlock diagnoses can name
    them; [name] defaults to ["counter-<n>"]. *)

val counter_value : counter -> int
val counter_name : counter -> string

val counter_reset : counter -> unit
(** Reset to zero. Raises {!Error.Sim_error} ([Invalid]) if fibers are
    still waiting on it. *)

val counter_incr : counter -> unit
(** Increment and wake satisfied waiters (at the current clock). *)

(** {2 Fiber-side operations} (only valid inside a [spawn]ed fiber) *)

val delay : float -> unit
(** Advance this fiber's time by the given number of seconds. *)

val await : counter -> int -> unit
(** Block until the counter's value is at least the target. *)

val await_deadline : counter -> int -> timeout:float -> bool
(** Like {!await}, but give up after [timeout] simulated seconds: returns
    [true] if the counter reached the target, [false] on timeout (the
    waiter is deregistered). The basis of the interpreter's bounded
    retry-with-backoff recovery. *)

(** {2 Barriers} *)

type barrier

val new_barrier : ?name:string -> t -> parties:int -> barrier

val barrier_wait : barrier -> unit
(** Fiber-side: block until [parties] fibers have arrived in this round. *)

(** {2 Bandwidth-shared channels} *)

type channel

val new_channel : t -> bw_bytes_per_s:float -> latency_s:float -> channel

val transfer :
  ?faults:Fault.t -> channel -> bytes:int -> on_complete:(unit -> unit) ->
  float * float
(** Issue a non-blocking transfer from a fiber (or a completion closure):
    the channel serializes occupancy at its bandwidth; [on_complete] runs
    [latency] after the transfer drains. Returns immediately with the
    transfer's [(start, completion)] interval, which is known at issue time
    because the channel is deterministic. With [faults], the occupancy is
    perturbed by the plan's jitter/stall decisions; without, the timing is
    bit-identical to the unfaulted model. *)

val channel_busy_until : channel -> float
