type mesh = { rows : int; cols : int }

type micro_kernel = {
  m : int;
  n : int;
  k : int;
  efficiency : float;
  call_overhead_s : float;
}

type link = { bw_bytes_per_s : float; latency_s : float }

type cpe = {
  freq_hz : float;
  simd_flops_per_cycle : float;
  naive_flops_per_cycle : float;
  ew_cycles_per_elem : float;
}

type mpe = {
  mpe_freq_hz : float;
  stream_bw_bytes_per_s : float;
  mpe_ew_cycles_per_elem : (string * float) list;
}

type noc = {
  link_bw_bytes_per_s : float;
  src_bw_bytes_per_s : float;
  noc_latency_s : float;
}

type t = {
  name : string;
  mesh : mesh;
  spm_bytes : int;
  cpe : cpe;
  mk : micro_kernel;
  dma : link;
  rma : link;
  sync_latency_s : float;
  mesh_startup_s : float;
  mpe : mpe;
  noc : noc;
}

(* ------------------------------------------------------------------ *)
(* Validation                                                           *)
(* ------------------------------------------------------------------ *)

type error =
  | Empty_mesh of mesh
  | Empty_micro_kernel of micro_kernel
  | Non_positive_rate of string * float
  | Efficiency_out_of_range of float
  | Spm_overflow of { needed_bytes : int; spm_bytes : int }

let error_to_string = function
  | Empty_mesh m -> Printf.sprintf "empty mesh (%dx%d)" m.rows m.cols
  | Empty_micro_kernel mk ->
      Printf.sprintf "empty micro kernel (%dx%dx%d)" mk.m mk.n mk.k
  | Non_positive_rate (field, v) ->
      Printf.sprintf "non-positive %s (%g)" field v
  | Efficiency_out_of_range e ->
      Printf.sprintf "micro-kernel efficiency %g out of (0, 1]" e
  | Spm_overflow { needed_bytes; spm_bytes } ->
      Printf.sprintf
        "micro kernel tiles (%d bytes double-buffered) overflow the %d-byte \
         SPM"
        needed_bytes spm_bytes

(* the nine local buffers of §6.3: C + 2x(A dma, B dma, A bcast, B bcast) *)
let spm_needed_bytes d =
  8 * ((d.mk.m * d.mk.n) + (4 * d.mk.m * d.mk.k) + (4 * d.mk.k * d.mk.n))

let validate d =
  let ( let* ) = Result.bind in
  let rate field v =
    if v <= 0.0 then Error (Non_positive_rate (field, v)) else Ok ()
  in
  let* () =
    if d.mesh.rows <= 0 || d.mesh.cols <= 0 then Error (Empty_mesh d.mesh)
    else Ok ()
  in
  let* () =
    if d.mk.m <= 0 || d.mk.n <= 0 || d.mk.k <= 0 then
      Error (Empty_micro_kernel d.mk)
    else Ok ()
  in
  let* () = rate "cpe.freq_hz" d.cpe.freq_hz in
  let* () = rate "cpe.simd_flops_per_cycle" d.cpe.simd_flops_per_cycle in
  let* () = rate "cpe.naive_flops_per_cycle" d.cpe.naive_flops_per_cycle in
  let* () = rate "cpe.ew_cycles_per_elem" d.cpe.ew_cycles_per_elem in
  let* () = rate "dma.bw_bytes_per_s" d.dma.bw_bytes_per_s in
  let* () = rate "rma.bw_bytes_per_s" d.rma.bw_bytes_per_s in
  let* () = rate "mpe.freq_hz" d.mpe.mpe_freq_hz in
  let* () = rate "mpe.stream_bw_bytes_per_s" d.mpe.stream_bw_bytes_per_s in
  let* () = rate "noc.link_bw_bytes_per_s" d.noc.link_bw_bytes_per_s in
  let* () = rate "noc.src_bw_bytes_per_s" d.noc.src_bw_bytes_per_s in
  let* () =
    List.fold_left
      (fun acc (fn, cyc) ->
        let* () = acc in
        rate (Printf.sprintf "mpe.ew_cycles_per_elem[%s]" fn) cyc)
      (Ok ()) d.mpe.mpe_ew_cycles_per_elem
  in
  let* () =
    if d.mk.efficiency <= 0.0 || d.mk.efficiency > 1.0 then
      Error (Efficiency_out_of_range d.mk.efficiency)
    else Ok ()
  in
  let needed = spm_needed_bytes d in
  if needed > d.spm_bytes then
    Error (Spm_overflow { needed_bytes = needed; spm_bytes = d.spm_bytes })
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Conversion to/from the flat simulator record                         *)
(* ------------------------------------------------------------------ *)

let to_config d =
  {
    Config.name = d.name;
    mesh_rows = d.mesh.rows;
    mesh_cols = d.mesh.cols;
    spm_bytes = d.spm_bytes;
    cpe_freq_hz = d.cpe.freq_hz;
    cpe_simd_flops_per_cycle = d.cpe.simd_flops_per_cycle;
    cpe_naive_flops_per_cycle = d.cpe.naive_flops_per_cycle;
    micro_kernel_efficiency = d.mk.efficiency;
    kernel_call_overhead_s = d.mk.call_overhead_s;
    mem_bw_bytes_per_s = d.dma.bw_bytes_per_s;
    dma_latency_s = d.dma.latency_s;
    rma_bw_bytes_per_s = d.rma.bw_bytes_per_s;
    rma_latency_s = d.rma.latency_s;
    sync_latency_s = d.sync_latency_s;
    mesh_startup_s = d.mesh_startup_s;
    ew_cpe_cycles_per_elem = d.cpe.ew_cycles_per_elem;
    mpe_stream_bw_bytes_per_s = d.mpe.stream_bw_bytes_per_s;
    mpe_freq_hz = d.mpe.mpe_freq_hz;
    mpe_ew_cycles_per_elem = d.mpe.mpe_ew_cycles_per_elem;
    mk_m = d.mk.m;
    mk_n = d.mk.n;
    mk_k = d.mk.k;
  }

(* Calibrated against the measured inter-cluster numbers Multi_sim uses. *)
let default_noc =
  {
    link_bw_bytes_per_s = 24.0e9;
    src_bw_bytes_per_s = 80.0e9;
    noc_latency_s = 4.0e-6;
  }

let of_config ?(noc = default_noc) (c : Config.t) =
  {
    name = c.Config.name;
    mesh = { rows = c.Config.mesh_rows; cols = c.Config.mesh_cols };
    spm_bytes = c.Config.spm_bytes;
    cpe =
      {
        freq_hz = c.Config.cpe_freq_hz;
        simd_flops_per_cycle = c.Config.cpe_simd_flops_per_cycle;
        naive_flops_per_cycle = c.Config.cpe_naive_flops_per_cycle;
        ew_cycles_per_elem = c.Config.ew_cpe_cycles_per_elem;
      };
    mk =
      {
        m = c.Config.mk_m;
        n = c.Config.mk_n;
        k = c.Config.mk_k;
        efficiency = c.Config.micro_kernel_efficiency;
        call_overhead_s = c.Config.kernel_call_overhead_s;
      };
    dma =
      {
        bw_bytes_per_s = c.Config.mem_bw_bytes_per_s;
        latency_s = c.Config.dma_latency_s;
      };
    rma =
      {
        bw_bytes_per_s = c.Config.rma_bw_bytes_per_s;
        latency_s = c.Config.rma_latency_s;
      };
    sync_latency_s = c.Config.sync_latency_s;
    mesh_startup_s = c.Config.mesh_startup_s;
    mpe =
      {
        mpe_freq_hz = c.Config.mpe_freq_hz;
        stream_bw_bytes_per_s = c.Config.mpe_stream_bw_bytes_per_s;
        mpe_ew_cycles_per_elem = c.Config.mpe_ew_cycles_per_elem;
      };
    noc;
  }

let peak_gflops d = Config.peak_gflops (to_config d)

(* ------------------------------------------------------------------ *)
(* Presets                                                              *)
(* ------------------------------------------------------------------ *)

(* Full-scale variants share the calibrated SW26010Pro per-CPE and link
   parameters; only the mesh geometry differs. The tiny family (16 KiB
   SPM, 4x4x2 micro kernel) is what the conformance fuzzer and the fast
   functional tests simulate. *)
let scaled name ~rows ~cols =
  {
    (of_config Config.sw26010pro) with
    name;
    mesh = { rows; cols };
  }

let tiny_desc name ~rows ~cols ?(mk = (4, 4, 2)) () =
  { (of_config (Config.tiny ~mesh:rows ~cols ~mk ())) with name }

let all =
  [
    scaled "sw26010pro" ~rows:8 ~cols:8;
    scaled "sw26010pro-4x4" ~rows:4 ~cols:4;
    scaled "sw26010pro-8x4" ~rows:8 ~cols:4;
    scaled "sw26010pro-16x16" ~rows:16 ~cols:16;
    tiny_desc "tiny2" ~rows:2 ~cols:2 ();
    tiny_desc "tiny2-deep" ~rows:2 ~cols:2 ~mk:(4, 4, 4) ();
    tiny_desc "tiny4" ~rows:4 ~cols:4 ();
    tiny_desc "tiny-8x8" ~rows:8 ~cols:8 ();
    tiny_desc "tiny-8x4" ~rows:8 ~cols:4 ();
    tiny_desc "tiny-16x16" ~rows:16 ~cols:16 ();
  ]

let aliases = [ ("tiny-2x2", "tiny2"); ("tiny-4x4", "tiny4") ]

let find name =
  let canonical =
    match List.assoc_opt name aliases with Some c -> c | None -> name
  in
  List.find_opt (fun d -> d.name = canonical) all

let names () = List.map (fun d -> d.name) all
let config_of_name name = Option.map to_config (find name)

(* ------------------------------------------------------------------ *)
(* JSON                                                                 *)
(* ------------------------------------------------------------------ *)

module Json = Sw_obs.Json

let to_json d =
  let f x = Json.Float x in
  Json.Obj
    [
      ("name", Json.String d.name);
      ( "mesh",
        Json.Obj [ ("rows", Json.Int d.mesh.rows); ("cols", Json.Int d.mesh.cols) ]
      );
      ("spm_bytes", Json.Int d.spm_bytes);
      ( "cpe",
        Json.Obj
          [
            ("freq_hz", f d.cpe.freq_hz);
            ("simd_flops_per_cycle", f d.cpe.simd_flops_per_cycle);
            ("naive_flops_per_cycle", f d.cpe.naive_flops_per_cycle);
            ("ew_cycles_per_elem", f d.cpe.ew_cycles_per_elem);
          ] );
      ( "micro_kernel",
        Json.Obj
          [
            ("m", Json.Int d.mk.m);
            ("n", Json.Int d.mk.n);
            ("k", Json.Int d.mk.k);
            ("efficiency", f d.mk.efficiency);
            ("call_overhead_s", f d.mk.call_overhead_s);
          ] );
      ( "dma",
        Json.Obj
          [
            ("bw_bytes_per_s", f d.dma.bw_bytes_per_s);
            ("latency_s", f d.dma.latency_s);
          ] );
      ( "rma",
        Json.Obj
          [
            ("bw_bytes_per_s", f d.rma.bw_bytes_per_s);
            ("latency_s", f d.rma.latency_s);
          ] );
      ("sync_latency_s", f d.sync_latency_s);
      ("mesh_startup_s", f d.mesh_startup_s);
      ( "mpe",
        Json.Obj
          [
            ("freq_hz", f d.mpe.mpe_freq_hz);
            ("stream_bw_bytes_per_s", f d.mpe.stream_bw_bytes_per_s);
            ( "ew_cycles_per_elem",
              Json.Obj
                (List.map
                   (fun (fn, cyc) -> (fn, f cyc))
                   d.mpe.mpe_ew_cycles_per_elem) );
          ] );
      ( "noc",
        Json.Obj
          [
            ("link_bw_bytes_per_s", f d.noc.link_bw_bytes_per_s);
            ("src_bw_bytes_per_s", f d.noc.src_bw_bytes_per_s);
            ("latency_s", f d.noc.noc_latency_s);
          ] );
    ]

let of_json j =
  let ( let* ) = Result.bind in
  (* strict object decoder: every listed field must be present and no
     other field may appear *)
  let obj path fields k j =
    match j with
    | Json.Obj members ->
        let* () =
          List.fold_left
            (fun acc (name, _) ->
              let* () = acc in
              if List.mem name fields then Ok ()
              else Error (Printf.sprintf "%s: unknown field %S" path name))
            (Ok ()) members
        in
        let* () =
          List.fold_left
            (fun acc field ->
              let* () = acc in
              if List.mem_assoc field members then Ok ()
              else Error (Printf.sprintf "%s: missing field %S" path field))
            (Ok ()) fields
        in
        k (fun field -> List.assoc field members)
    | _ -> Error (Printf.sprintf "%s: expected an object" path)
  in
  let int path j =
    match Json.to_int_opt j with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "%s: expected an integer" path)
  in
  let flt path j =
    match Json.to_float_opt j with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "%s: expected a number" path)
  in
  let str path j =
    match Json.to_string_opt j with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "%s: expected a string" path)
  in
  obj "description"
    [
      "name";
      "mesh";
      "spm_bytes";
      "cpe";
      "micro_kernel";
      "dma";
      "rma";
      "sync_latency_s";
      "mesh_startup_s";
      "mpe";
      "noc";
    ]
    (fun get ->
      let* name = str "name" (get "name") in
      let* mesh =
        obj "mesh" [ "rows"; "cols" ] (fun g ->
            let* rows = int "mesh.rows" (g "rows") in
            let* cols = int "mesh.cols" (g "cols") in
            Ok { rows; cols })
          (get "mesh")
      in
      let* spm_bytes = int "spm_bytes" (get "spm_bytes") in
      let* cpe =
        obj "cpe"
          [
            "freq_hz";
            "simd_flops_per_cycle";
            "naive_flops_per_cycle";
            "ew_cycles_per_elem";
          ]
          (fun g ->
            let* freq_hz = flt "cpe.freq_hz" (g "freq_hz") in
            let* simd_flops_per_cycle =
              flt "cpe.simd_flops_per_cycle" (g "simd_flops_per_cycle")
            in
            let* naive_flops_per_cycle =
              flt "cpe.naive_flops_per_cycle" (g "naive_flops_per_cycle")
            in
            let* ew_cycles_per_elem =
              flt "cpe.ew_cycles_per_elem" (g "ew_cycles_per_elem")
            in
            Ok
              {
                freq_hz;
                simd_flops_per_cycle;
                naive_flops_per_cycle;
                ew_cycles_per_elem;
              })
          (get "cpe")
      in
      let* mk =
        obj "micro_kernel" [ "m"; "n"; "k"; "efficiency"; "call_overhead_s" ]
          (fun g ->
            let* m = int "micro_kernel.m" (g "m") in
            let* n = int "micro_kernel.n" (g "n") in
            let* k = int "micro_kernel.k" (g "k") in
            let* efficiency = flt "micro_kernel.efficiency" (g "efficiency") in
            let* call_overhead_s =
              flt "micro_kernel.call_overhead_s" (g "call_overhead_s")
            in
            Ok { m; n; k; efficiency; call_overhead_s })
          (get "micro_kernel")
      in
      let link path j =
        obj path [ "bw_bytes_per_s"; "latency_s" ]
          (fun g ->
            let* bw_bytes_per_s =
              flt (path ^ ".bw_bytes_per_s") (g "bw_bytes_per_s")
            in
            let* latency_s = flt (path ^ ".latency_s") (g "latency_s") in
            Ok { bw_bytes_per_s; latency_s })
          j
      in
      let* dma = link "dma" (get "dma") in
      let* rma = link "rma" (get "rma") in
      let* sync_latency_s = flt "sync_latency_s" (get "sync_latency_s") in
      let* mesh_startup_s = flt "mesh_startup_s" (get "mesh_startup_s") in
      let* mpe =
        obj "mpe" [ "freq_hz"; "stream_bw_bytes_per_s"; "ew_cycles_per_elem" ]
          (fun g ->
            let* mpe_freq_hz = flt "mpe.freq_hz" (g "freq_hz") in
            let* stream_bw_bytes_per_s =
              flt "mpe.stream_bw_bytes_per_s" (g "stream_bw_bytes_per_s")
            in
            let* mpe_ew_cycles_per_elem =
              match g "ew_cycles_per_elem" with
              | Json.Obj members ->
                  List.fold_left
                    (fun acc (fn, v) ->
                      let* table = acc in
                      let* cyc =
                        flt
                          (Printf.sprintf "mpe.ew_cycles_per_elem[%s]" fn)
                          v
                      in
                      Ok ((fn, cyc) :: table))
                    (Ok []) members
                  |> Result.map List.rev
              | _ -> Error "mpe.ew_cycles_per_elem: expected an object"
            in
            Ok { mpe_freq_hz; stream_bw_bytes_per_s; mpe_ew_cycles_per_elem })
          (get "mpe")
      in
      let* noc =
        obj "noc" [ "link_bw_bytes_per_s"; "src_bw_bytes_per_s"; "latency_s" ]
          (fun g ->
            let* link_bw_bytes_per_s =
              flt "noc.link_bw_bytes_per_s" (g "link_bw_bytes_per_s")
            in
            let* src_bw_bytes_per_s =
              flt "noc.src_bw_bytes_per_s" (g "src_bw_bytes_per_s")
            in
            let* noc_latency_s = flt "noc.latency_s" (g "latency_s") in
            Ok { link_bw_bytes_per_s; src_bw_bytes_per_s; noc_latency_s })
          (get "noc")
      in
      Ok
        {
          name;
          mesh;
          spm_bytes;
          cpe;
          mk;
          dma;
          rma;
          sync_latency_s;
          mesh_startup_s;
          mpe;
          noc;
        })
    j

let load_file path =
  let ( let* ) = Result.bind in
  let* j = Json.parse_file path in
  let* d = of_json j in
  match validate d with
  | Ok () -> Ok d
  | Error e ->
      Error (Printf.sprintf "%s: invalid description: %s" path (error_to_string e))
