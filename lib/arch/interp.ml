open Sw_poly
open Sw_tree

type retry_policy = { timeout_s : float; backoff : float; max_retries : int }

(* First deadline shorter than the plan's re-delivery delay so a dropped
   reply that will be re-delivered is recovered by retrying rather than by
   luck; backoff doubles each round. *)
let default_retry = { timeout_s = 50e-6; backoff = 2.0; max_retries = 8 }

type result = { seconds : float; races : Error.race list; retries : int }

let fail fmt =
  Printf.ksprintf (fun s -> raise (Error.Sim_error (Error.Invalid s))) fmt

let gflops ~flops ~seconds = float_of_int flops /. seconds /. 1e9

(* Evaluate an affine expression in the per-CPE environment. *)
let eval_aff ~env ~params a =
  Aff.eval
    ~vars:(fun v ->
      match List.assoc_opt v !env with
      | Some x -> x
      | None -> fail "unbound loop variable %s" v)
    ~params a

let eval_buf ~env ~params spm (b : Comm.buf) =
  let copies = Spm.copies spm b.Comm.base in
  let copy =
    match b.Comm.parity with
    | None -> 0
    | Some p -> Sw_poly.Ints.fmod (eval_aff ~env ~params p) copies
  in
  (b.Comm.base, copy)

let eval_reply ~env ~params (name : string) (parity : Aff.t option) =
  match parity with
  | None -> (name, 0)
  | Some p -> (name, Sw_poly.Ints.fmod (eval_aff ~env ~params p) 2)

(* A timed-out wait is retried with exponential backoff; when the budget is
   exhausted the typed [Fault_exhausted] carries the CPE and counter so the
   caller can degrade (e.g. re-run on the MPE) or report precisely. *)
let wait_with_retry cluster (cpe : Cluster.cpe) ~retry ~retries ~reply ~rcopy =
  match retry with
  | None -> Cluster.wait_reply cluster cpe ~reply ~rcopy
  | Some p ->
      let rec attempt i timeout =
        if Cluster.wait_reply_deadline cluster cpe ~reply ~rcopy ~timeout then
          ()
        else if i >= p.max_retries then
          raise
            (Error.Sim_error
               (Error.Fault_exhausted
                  {
                    fiber =
                      Printf.sprintf "CPE(%d,%d)" cpe.Cluster.rid
                        cpe.Cluster.cid;
                    counter = Printf.sprintf "%s[%d]" reply (rcopy land 1);
                    retries = i;
                    sim_time = Engine.now cluster.Cluster.engine;
                  }))
        else begin
          incr retries;
          Sw_obs.Metrics.incr_a "sim.retries_total";
          attempt (i + 1) (timeout *. p.backoff)
        end
      in
      attempt 0 p.timeout_s

let exec_op cluster (cpe : Cluster.cpe) ~env ~params ~retry ~retries
    (c : Comm.t) =
  let eval = eval_aff ~env ~params in
  match c with
  | Comm.Dma_get d | Comm.Dma_put d ->
      let reply, rcopy = eval_reply ~env ~params d.Comm.reply d.Comm.reply_parity in
      let buf, copy = eval_buf ~env ~params cpe.Cluster.spm d.Comm.spm in
      let batch = Option.map eval d.Comm.batch in
      let f =
        match c with
        | Comm.Dma_get _ -> Cluster.dma_get
        | _ -> Cluster.dma_put
      in
      f cluster cpe ~array_name:d.Comm.array ~batch ~row_lo:(eval d.Comm.row_lo)
        ~col_lo:(eval d.Comm.col_lo) ~rows:d.Comm.rows ~cols:d.Comm.cols ~buf
        ~copy ~reply ~rcopy
  | Comm.Rma_bcast r ->
      let reply_s, rcopy = eval_reply ~env ~params r.Comm.reply_s r.Comm.reply_parity in
      let reply_r, _ = eval_reply ~env ~params r.Comm.reply_r r.Comm.reply_parity in
      Cluster.rma_bcast cluster cpe ~dir:r.Comm.dir
        ~src:(eval_buf ~env ~params cpe.Cluster.spm r.Comm.src)
        ~dst:(eval_buf ~env ~params cpe.Cluster.spm r.Comm.dst)
        ~rows:r.Comm.rows ~cols:r.Comm.cols ~root:(eval r.Comm.root) ~reply_s
        ~reply_r ~rcopy
  | Comm.Wait w ->
      let reply, rcopy = eval_reply ~env ~params w.reply w.reply_parity in
      wait_with_retry cluster cpe ~retry ~retries ~reply ~rcopy
  | Comm.Sync -> Cluster.sync cluster cpe
  | Comm.Spm_map s ->
      Cluster.spm_map cluster cpe
        ~buf:(eval_buf ~env ~params cpe.Cluster.spm s.target)
        ~rows:s.rows ~cols:s.cols ~fn:s.fn
  | Comm.Kernel k ->
      Cluster.kernel cluster cpe
        ~c:(eval_buf ~env ~params cpe.Cluster.spm k.Comm.c)
        ~a:(eval_buf ~env ~params cpe.Cluster.spm k.Comm.a)
        ~b:(eval_buf ~env ~params cpe.Cluster.spm k.Comm.b)
        ~m:k.Comm.m ~n:k.Comm.n ~k:k.Comm.k ~alpha:k.Comm.alpha
        ~accumulate:k.Comm.accumulate ~ta:k.Comm.ta ~tb:k.Comm.tb
        ~style:(match k.Comm.style with Comm.Asm -> `Asm | Comm.Naive -> `Naive)

let run_cpe cluster cpe ~params ~user ~retry ~retries
    (body : Sw_ast.Ast.block) =
  let env = ref [] in
  let rec block stmts = List.iter stmt stmts
  and stmt s =
    match s with
    | Sw_ast.Ast.For { var; lbs; ubs; body } ->
        let lo =
          List.fold_left
            (fun acc a -> max acc (eval_aff ~env ~params a))
            min_int lbs
        and hi =
          List.fold_left
            (fun acc a -> min acc (eval_aff ~env ~params a))
            max_int ubs
        in
        if lo = min_int || hi = max_int then
          fail "loop %s has no finite bound" var;
        for x = lo to hi do
          env := (var, x) :: !env;
          block body;
          env := List.tl !env
        done
    | Sw_ast.Ast.Let { var; value; body } ->
        env := (var, eval_aff ~env ~params value) :: !env;
        block body;
        env := List.tl !env
    | Sw_ast.Ast.If { conds; body } ->
        let sat =
          List.for_all
            (fun p ->
              Pred.eval
                ~vars:(fun v ->
                  match List.assoc_opt v !env with
                  | Some x -> x
                  | None -> fail "unbound loop variable %s" v)
                ~params p)
            conds
        in
        if sat then block body
    | Sw_ast.Ast.Op c -> exec_op cluster cpe ~env ~params ~retry ~retries c
    | Sw_ast.Ast.User { name; args } -> (
        match user with
        | Some f ->
            f ~rid:cpe.Cluster.rid ~cid:cpe.Cluster.cid name
              (List.map (fun (it, a) -> (it, eval_aff ~env ~params a)) args)
        | None -> fail "User statement %s but no user callback" name)
    | Sw_ast.Ast.Comment _ -> ()
  in
  block body

let run ?trace ?faults ?watchdog ?retry ~config ~functional ~mem ?user
    (program : Sw_ast.Ast.program) =
  let cluster = Cluster.create ?trace ?faults ~config ~functional ~mem () in
  (* Retry deadlines only matter when replies can be lost; without a fault
     plan every wait is satisfied normally, so disarm the deadline path and
     keep the fault-free simulation bit-identical to the plain model (no
     stale timeout events advancing the final clock). *)
  let retry = if faults = None then None else retry in
  (match watchdog with
  | Some w -> Engine.set_watchdog cluster.Cluster.engine w
  | None -> ());
  let retries = ref 0 in
  Cluster.alloc_buffers cluster program.Sw_ast.Ast.spm_decls;
  Cluster.alloc_replies cluster program.Sw_ast.Ast.replies;
  Cluster.iter_cpes cluster (fun cpe ->
      let params name =
        match name with
        | "Rid" -> cpe.Cluster.rid
        | "Cid" -> cpe.Cluster.cid
        | _ -> (
            match List.assoc_opt name program.Sw_ast.Ast.params with
            | Some v -> v
            | None -> fail "unknown parameter %s" name)
      in
      Engine.spawn
        ~label:(Printf.sprintf "CPE(%d,%d)" cpe.Cluster.rid cpe.Cluster.cid)
        cluster.Cluster.engine
        (fun () ->
          run_cpe cluster cpe ~params ~user ~retry ~retries
            program.Sw_ast.Ast.body));
  let finish = Engine.run cluster.Cluster.engine in
  {
    seconds = finish +. config.Config.mesh_startup_s;
    races = Cluster.races cluster;
    retries = !retries;
  }
