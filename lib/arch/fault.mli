(** Seeded, deterministic fault injection for the simulated cluster.

    A fault plan perturbs the asynchronous protocols the generated kernels
    depend on, each kind modelling a failure mode of the real SW26010Pro:

    - {!Jitter}/{!Stall}: DMA/RMA channel bandwidth variation and transient
      memory-controller stalls;
    - {!Delay_reply}/{!Drop_reply}: late or lost reply-counter increments
      (lost athread DMA interrupts); dropped increments are re-delivered
      after a bounded delay, except for a configurable fraction that is
      lost for good;
    - {!Straggler}: chosen CPEs run their micro kernels slower (frequency
      throttling, a noisy neighbour on the mesh);
    - {!Flip}: an element of an SPM tile is corrupted between a write and
      its next read (functional mode only — models an SPM soft error).

    Plans are deterministic: the same [seed] (and spec) perturbs the same
    simulated execution identically, so failures found by the resilience
    property are replayable. *)

type kind = Jitter | Stall | Delay_reply | Drop_reply | Straggler | Flip

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type spec = {
  kinds : kind list;  (** enabled fault kinds *)
  jitter_frac : float;  (** max fractional channel slowdown *)
  stall_prob : float;  (** per-transfer transient stall probability *)
  stall_s : float;
  delay_prob : float;  (** per-reply delayed-increment probability *)
  delay_s : float;  (** max extra delivery delay *)
  drop_prob : float;  (** per-reply dropped-increment probability *)
  drop_permanent_frac : float;  (** fraction of drops never re-delivered *)
  redeliver_s : float;  (** bounded re-delivery latency of a drop *)
  straggler_frac : float;  (** fraction of CPEs that straggle *)
  straggler_slowdown : float;  (** kernel-time factor on stragglers *)
  flip_prob : float;  (** per-tile-write corruption probability *)
  flip_magnitude : float;  (** max absolute perturbation of the element *)
}

val default_spec : spec

val spec_with : kinds:kind list -> spec -> spec
(** Restrict (or extend) the enabled kinds, keeping all rates. *)

type t

val plan : ?spec:spec -> seed:int -> unit -> t
val seed : t -> int

val stats : t -> (kind * int) list
(** Injections actually performed so far, by kind (zero counts omitted). *)

val stats_to_string : t -> string

(** {2 Injection decisions} (drawn by the engine and cluster) *)

type channel_perturb = { stall_s : float; slowdown : float }

val channel_perturb : t -> channel_perturb
(** Per-transfer perturbation: an additive stall and a bandwidth slowdown
    factor [>= 1]. *)

type disposition =
  | Deliver
  | Delay of float  (** deliver the increment late *)
  | Drop of { redeliver_after : float }  (** bounded re-delivery *)
  | Drop_forever  (** lost interrupt: never delivered *)

val reply_disposition : t -> disposition

val is_straggler : t -> rid:int -> cid:int -> bool
(** Membership is a pure function of the plan seed and the coordinates. *)

val kernel_slowdown : t -> rid:int -> cid:int -> float

val flip : t -> elems:int -> (int * float) option
(** [Some (index, delta)] to corrupt one element of a just-written tile. *)
