(** Main (DDR) memory of the cluster: named row-major double arrays.

    Arrays are two-dimensional matrices or three-dimensional batched
    matrices; the last dimension is contiguous, matching the [len]/[strip]
    addressing of the DMA interfaces (§4). *)

type t

type array_info = { dims : int array; data : float array }

val create : unit -> t

val alloc : t -> string -> dims:int list -> unit
(** Allocate a zero-initialized array. Raises [Invalid_argument] on
    duplicate names or dimensionality outside {2, 3}. *)

val alloc_init : t -> string -> dims:int list -> f:(int array -> float) -> unit
(** Allocate and initialize element-wise from the index vector. *)

val find : t -> string -> array_info
val data : t -> string -> float array
val dims : t -> string -> int array

val row_len : t -> string -> int
(** Extent of the last (contiguous) dimension. *)

val offset : t -> string -> ?batch:int -> row:int -> col:int -> unit -> int
(** Flat element offset of [(batch,) row, col]; bounds-checked. Raises
    {!Error.Sim_error} ([Bounds]) on an out-of-range or mis-batched
    access. *)

val names : t -> string list
