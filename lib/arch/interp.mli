(** SPMD interpreter: runs a generated {!Sw_ast.Ast.program} on the
    simulated cluster.

    One fiber per CPE executes the program body with its own [Rid]/[Cid];
    communication ops use the {!Cluster} primitives, so the simulation is
    timing-accurate (shared memory-controller bandwidth, RMA links, barrier
    costs, micro-kernel cycles) and — in functional mode — moves real data,
    which is how the generated code's correctness is established
    end-to-end.

    Fibers are labelled ["CPE(r,c)"], so a deadlock diagnosis names the
    exact CPE coordinates and the reply counter (with its parity slot) each
    blocked fiber is parked on. *)

type retry_policy = {
  timeout_s : float;  (** first deadline for a blocked wait *)
  backoff : float;  (** deadline multiplier per retry *)
  max_retries : int;  (** retries before {!Error.Fault_exhausted} *)
}

val default_retry : retry_policy
(** 50 us first deadline, x2 backoff, 8 retries — tuned so a reply dropped
    and re-delivered by the default {!Fault.spec} is recovered well within
    the budget. *)

type result = {
  seconds : float;
      (** simulated wall time: mesh startup + the slowest CPE's finish *)
  races : Error.race list;
      (** double-buffering violations, sorted by CPE then buffer *)
  retries : int;  (** timed-out waits that were retried (0 without faults) *)
}

val run :
  ?trace:Trace.t ->
  ?faults:Fault.t ->
  ?watchdog:Engine.watchdog ->
  ?retry:retry_policy ->
  config:Config.t ->
  functional:bool ->
  mem:Mem.t ->
  ?user:(rid:int -> cid:int -> string -> (string * int) list -> unit) ->
  Sw_ast.Ast.program ->
  result
(** Raises {!Error.Sim_error} on every failure: [Invalid] for malformed
    programs (unbound loop variables, unknown parameters, a [User]
    statement without a [user] callback), [Overflow] for SPM exhaustion,
    [Bounds] for out-of-range main-memory accesses, [Deadlock] (with a
    full quiescence diagnosis) when fibers block forever, [Watchdog] when a
    [?watchdog] budget trips, and [Fault_exhausted] when a wait under
    [?retry] runs out of retries.

    [?faults] perturbs the simulation per the plan; omitted, every fault
    hook short-circuits and results are bit-identical to the pre-fault
    model. [?retry] arms bounded retry-with-backoff on [Wait] ops; it is
    ignored when [?faults] is absent (a wait can only starve under
    injection), and without it a permanently dropped reply deadlocks —
    with forensics — instead. *)

val gflops : flops:int -> seconds:float -> float
(** Convenience: [flops / seconds / 1e9]. *)
