(** Declarative, validated architecture descriptions.

    {!Config.t} is the flat record the simulator and cost model consume;
    this module is the layer above it: structured machine descriptions
    with named presets, typed validation errors, and a strict JSON
    round-trip so a machine can be described in a file and loaded with
    [--arch-file]. The registry covers the calibrated SW26010Pro, scaled
    mesh variants (including rectangular meshes), and the tiny family the
    conformance fuzzer runs on. *)

type mesh = { rows : int; cols : int }

type micro_kernel = {
  m : int;
  n : int;
  k : int;
  efficiency : float;  (** fraction of SIMD peak the kernel sustains *)
  call_overhead_s : float;
}

type link = { bw_bytes_per_s : float; latency_s : float }

type cpe = {
  freq_hz : float;
  simd_flops_per_cycle : float;
  naive_flops_per_cycle : float;
  ew_cycles_per_elem : float;
}

type mpe = {
  mpe_freq_hz : float;
  stream_bw_bytes_per_s : float;
  mpe_ew_cycles_per_elem : (string * float) list;
}

type noc = {
  link_bw_bytes_per_s : float;  (** per inter-cluster link *)
  src_bw_bytes_per_s : float;  (** source-side injection bound *)
  noc_latency_s : float;
}

type t = {
  name : string;
  mesh : mesh;
  spm_bytes : int;
  cpe : cpe;
  mk : micro_kernel;
  dma : link;  (** shared memory controller: bandwidth + per-message latency *)
  rma : link;  (** per row/column mesh link *)
  sync_latency_s : float;
  mesh_startup_s : float;
  mpe : mpe;
  noc : noc;
}

(** {2 Validation} *)

type error =
  | Empty_mesh of mesh
  | Empty_micro_kernel of micro_kernel
  | Non_positive_rate of string * float
      (** field path (e.g. ["rma.bw_bytes_per_s"]) and offending value *)
  | Efficiency_out_of_range of float
  | Spm_overflow of { needed_bytes : int; spm_bytes : int }
      (** the nine §6.3 buffers do not fit *)

val error_to_string : error -> string
val validate : t -> (unit, error) result

val spm_needed_bytes : t -> int
(** Bytes of the nine double-buffered §6.3 SPM buffers for the
    description's micro kernel. *)

val peak_gflops : t -> float

(** {2 Conversion} *)

val to_config : t -> Config.t
(** Flatten for the simulator and cost model. The resulting config carries
    the description's [name]. *)

val of_config : ?noc:noc -> Config.t -> t
(** Lift a flat config; [noc] defaults to the calibrated inter-cluster
    parameters ({!default_noc}). *)

val default_noc : noc

(** {2 Presets} *)

val all : t list
(** Canonical presets: [sw26010pro] and its 4x4 / 8x4 / 16x16 mesh
    variants, plus the tiny family ([tiny2], [tiny2-deep], [tiny4],
    [tiny-8x8], [tiny-8x4], [tiny-16x16]) used by tests and the
    conformance fuzzer. Every preset validates. *)

val find : string -> t option
(** Look up a preset by name. Accepts the [tiny-RxC] spellings of the
    legacy names ([tiny-2x2] = [tiny2], [tiny-4x4] = [tiny4]). *)

val names : unit -> string list
(** Canonical preset names, registry order. *)

val config_of_name : string -> Config.t option
(** [find] composed with {!to_config}. *)

(** {2 JSON} *)

val to_json : t -> Sw_obs.Json.t

val of_json : Sw_obs.Json.t -> (t, string) result
(** Strict inverse of {!to_json}: missing or unknown fields are errors,
    and [of_json (to_json d) = Ok d] for every description without
    nan/inf rates. *)

val load_file : string -> (t, string) result
(** Parse a description from a JSON file and validate it. *)
