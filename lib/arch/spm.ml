type buffer = {
  rows : int;
  cols : int;
  copies : int;
  data : float array array;  (* per copy; [||] in timing-only mode *)
  last_write : (float * float) array;  (* per copy *)
  last_read : (float * float) array;
}

type t = {
  capacity : int;
  functional : bool;
  buffers : (string, buffer) Hashtbl.t;
  mutable used : int;
  mutable races : Error.conflict list;
}

let create ~capacity_bytes ~functional =
  {
    capacity = capacity_bytes;
    functional;
    buffers = Hashtbl.create 7;
    used = 0;
    races = [];
  }

let alloc t name ~rows ~cols ~copies =
  if Hashtbl.mem t.buffers name then
    failwith ("Spm.alloc: duplicate buffer " ^ name);
  if rows <= 0 || cols <= 0 || copies <= 0 then
    failwith ("Spm.alloc: empty buffer " ^ name);
  let bytes = 8 * rows * cols * copies in
  if t.used + bytes > t.capacity then
    raise
      (Error.Sim_error
         (Error.Overflow
            {
              buffer = name;
              needed = bytes;
              available = t.capacity - t.used;
              capacity = t.capacity;
            }));
  t.used <- t.used + bytes;
  let none = (neg_infinity, neg_infinity) in
  Hashtbl.add t.buffers name
    {
      rows;
      cols;
      copies;
      data =
        (if t.functional then
           Array.init copies (fun _ -> Array.make (rows * cols) 0.0)
         else [||]);
      last_write = Array.make copies none;
      last_read = Array.make copies none;
    }

let used_bytes t = t.used
let capacity_bytes t = t.capacity

let find t name =
  match Hashtbl.find_opt t.buffers name with
  | Some b -> b
  | None -> failwith ("Spm: unknown buffer " ^ name)

let get_copy t name copy =
  let b = find t name in
  if copy < 0 || copy >= b.copies then
    failwith
      (Printf.sprintf "Spm: copy %d out of range for %s (%d copies)" copy name
         b.copies);
  (b, copy)

let tile t name ~copy =
  let b, c = get_copy t name copy in
  if not t.functional then
    failwith "Spm.tile: no data in timing-only mode";
  b.data.(c)

let tile_rows t name = (find t name).rows
let tile_cols t name = (find t name).cols
let copies t name = (find t name).copies

let overlap (s1, f1) (s2, f2) = s1 < f2 && s2 < f1

let conflict t name c kind ~start ~finish ~prev =
  t.races <-
    {
      Error.buffer = name;
      copy = c;
      kind;
      op_start = start;
      op_finish = finish;
      prev_start = fst prev;
      prev_finish = snd prev;
    }
    :: t.races

let note_write t name ~copy ~start ~finish =
  let b, c = get_copy t name copy in
  if overlap (start, finish) b.last_read.(c) then
    conflict t name c `Write_read ~start ~finish ~prev:b.last_read.(c);
  if overlap (start, finish) b.last_write.(c) then
    conflict t name c `Write_write ~start ~finish ~prev:b.last_write.(c);
  b.last_write.(c) <- (start, finish)

let note_read t name ~copy ~start ~finish =
  let b, c = get_copy t name copy in
  if overlap (start, finish) b.last_write.(c) then
    conflict t name c `Read_write ~start ~finish ~prev:b.last_write.(c);
  b.last_read.(c) <- (start, finish)

let races t = List.rev t.races

let corrupt t name ~copy ~index ~delta =
  let b, c = get_copy t name copy in
  if t.functional then begin
    let tile = b.data.(c) in
    if index >= 0 && index < Array.length tile then
      tile.(index) <- tile.(index) +. delta
  end
