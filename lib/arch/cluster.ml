type cpe = {
  rid : int;
  cid : int;
  spm : Spm.t;
  replies : (string, Engine.counter array) Hashtbl.t;
}

type t = {
  config : Config.t;
  engine : Engine.t;
  mem : Mem.t;
  cpes : cpe array array;
  dma : Engine.channel;
  row_links : Engine.channel array;
  col_links : Engine.channel array;
  barrier : Engine.barrier;
  functional : bool;
  trace : Trace.t option;
  faults : Fault.t option;
  (* which primitive last armed each reply counter name: true = RMA
     broadcast, false = DMA. Lets wait events attribute their exposed
     latency to a pipeline level without hard-coding reply names. *)
  reply_rma : (string, bool) Hashtbl.t;
  (* wait-latency histograms, resolved once from the ambient registry *)
  m_wait_dma : Sw_obs.Metrics.histogram option;
  m_wait_rma : Sw_obs.Metrics.histogram option;
}

let create ?trace ?faults ~config ~functional ~mem () =
  (match Config.validate config with
  | Ok () -> ()
  | Error e ->
      raise (Error.Sim_error (Error.Invalid ("Cluster.create: " ^ e))));
  let engine = Engine.create () in
  let mk_cpe rid cid =
    {
      rid;
      cid;
      spm =
        Spm.create ~capacity_bytes:config.Config.spm_bytes ~functional;
      replies = Hashtbl.create 7;
    }
  in
  {
    config;
    engine;
    mem;
    cpes =
      Array.init config.Config.mesh_rows (fun r ->
          Array.init config.Config.mesh_cols (fun c -> mk_cpe r c));
    dma =
      Engine.new_channel engine ~bw_bytes_per_s:config.Config.mem_bw_bytes_per_s
        ~latency_s:config.Config.dma_latency_s;
    row_links =
      Array.init config.Config.mesh_rows (fun _ ->
          Engine.new_channel engine
            ~bw_bytes_per_s:config.Config.rma_bw_bytes_per_s
            ~latency_s:config.Config.rma_latency_s);
    col_links =
      Array.init config.Config.mesh_cols (fun _ ->
          Engine.new_channel engine
            ~bw_bytes_per_s:config.Config.rma_bw_bytes_per_s
            ~latency_s:config.Config.rma_latency_s);
    barrier =
      Engine.new_barrier engine
        ~parties:(config.Config.mesh_rows * config.Config.mesh_cols);
    functional;
    trace;
    faults;
    reply_rma = Hashtbl.create 16;
    m_wait_dma =
      Option.map
        (fun r ->
          Sw_obs.Metrics.histogram r ~labels:[ ("level", "dma") ]
            "sim.reply_wait_seconds")
        (Sw_obs.Metrics.current ());
    m_wait_rma =
      Option.map
        (fun r ->
          Sw_obs.Metrics.histogram r ~labels:[ ("level", "rma") ]
            "sim.reply_wait_seconds")
        (Sw_obs.Metrics.current ());
  }

(* Zero-duration events (an instantaneously satisfied wait, a degenerate
   transfer) are recorded too: dropping them would hide exactly the
   instants a forensic trace needs. [Trace.instant] marks them. *)
let trace_event t (cpe : cpe) kind ~start ~finish =
  match t.trace with
  | Some tr when finish >= start ->
      Trace.record tr
        { Trace.rid = cpe.rid; cid = cpe.cid; kind; start; finish }
  | Some _ | None -> ()

let cpe t ~rid ~cid = t.cpes.(rid).(cid)

let iter_cpes t f = Array.iter (fun row -> Array.iter f row) t.cpes

let alloc_buffers t decls =
  iter_cpes t (fun c ->
      List.iter
        (fun (d : Sw_ast.Ast.spm_decl) ->
          Spm.alloc c.spm d.Sw_ast.Ast.buf_name ~rows:d.Sw_ast.Ast.rows ~cols:d.Sw_ast.Ast.cols
            ~copies:d.Sw_ast.Ast.copies)
        decls)

let alloc_replies t names =
  iter_cpes t (fun c ->
      List.iter
        (fun name ->
          if not (Hashtbl.mem c.replies name) then
            Hashtbl.add c.replies name
              [|
                Engine.new_counter ~name:(name ^ "[0]") t.engine;
                Engine.new_counter ~name:(name ^ "[1]") t.engine;
              |])
        names)

let races t =
  let acc = ref [] in
  iter_cpes t (fun c ->
      List.iter
        (fun conflict ->
          acc := { Error.rid = c.rid; cid = c.cid; conflict } :: !acc)
        (Spm.races c.spm));
  List.sort Error.compare_race !acc

let reply_counter c ~reply ~rcopy =
  match Hashtbl.find_opt c.replies reply with
  | Some arr -> arr.(rcopy land 1)
  | None ->
      raise
        (Error.Sim_error (Error.Invalid ("Cluster: unknown reply counter " ^ reply)))

(* Copy a rectangle between main memory and an SPM tile. *)
let copy_rect t ~to_spm ~array_name ~batch ~row_lo ~col_lo ~rows ~cols ~spm
    ~buf ~copy =
  let data = Mem.data t.mem array_name in
  let stride = Mem.row_len t.mem array_name in
  let base = Mem.offset t.mem array_name ?batch ~row:row_lo ~col:col_lo () in
  (* also bounds-check the far corner *)
  ignore
    (Mem.offset t.mem array_name ?batch ~row:(row_lo + rows - 1)
       ~col:(col_lo + cols - 1) ());
  let tile = Spm.tile spm buf ~copy in
  for r = 0 to rows - 1 do
    let src = base + (r * stride) and dst = r * cols in
    if to_spm then Array.blit data src tile dst cols
    else Array.blit tile dst data src cols
  done

(* Reply increments pass through the fault plan: they can arrive late, be
   re-delivered after a bounded delay (a dropped-then-recovered interrupt),
   or be lost for good — in which case the waiter either deadlocks (with
   forensics) or times out into the interpreter's retry path. *)
let deliver_increment t counter =
  match t.faults with
  | None -> Engine.counter_incr counter
  | Some f -> (
      match Fault.reply_disposition f with
      | Fault.Deliver -> Engine.counter_incr counter
      | Fault.Delay d ->
          Engine.schedule t.engine ~after:d (fun () -> Engine.counter_incr counter)
      | Fault.Drop { redeliver_after } ->
          Engine.schedule t.engine ~after:redeliver_after (fun () ->
              Engine.counter_incr counter)
      | Fault.Drop_forever -> ())

(* SPM soft error: corrupt one element of a tile that was just written,
   before any fiber can read it (functional mode only). *)
let maybe_flip t spm ~buf ~copy ~elems =
  match t.faults with
  | Some f when t.functional -> (
      match Fault.flip f ~elems with
      | Some (index, delta) -> Spm.corrupt spm buf ~copy ~index ~delta
      | None -> ())
  | Some _ | None -> ()

let dma_message t c ~put ~array_name ~batch ~row_lo ~col_lo ~rows ~cols ~buf
    ~copy ~reply ~rcopy =
  let counter = reply_counter c ~reply ~rcopy in
  Engine.counter_reset counter;
  Hashtbl.replace t.reply_rma reply false;
  let bytes = 8 * rows * cols in
  let spm = c.spm in
  let start_finish = ref (0.0, 0.0) in
  let interval =
    Engine.transfer ?faults:t.faults t.dma ~bytes ~on_complete:(fun () ->
        let start, finish = !start_finish in
        if put then Spm.note_read spm buf ~copy ~start ~finish
        else Spm.note_write spm buf ~copy ~start ~finish;
        if t.functional then
          copy_rect t ~to_spm:(not put) ~array_name ~batch ~row_lo ~col_lo
            ~rows ~cols ~spm ~buf ~copy;
        if not put then maybe_flip t spm ~buf ~copy ~elems:(rows * cols);
        deliver_increment t counter)
  in
  start_finish := interval;
  let start, finish = interval in
  trace_event t c (Trace.Dma { bytes; put }) ~start ~finish

let dma_get t c ~array_name ~batch ~row_lo ~col_lo ~rows ~cols ~buf ~copy
    ~reply ~rcopy =
  dma_message t c ~put:false ~array_name ~batch ~row_lo ~col_lo ~rows ~cols
    ~buf ~copy ~reply ~rcopy

let dma_put t c ~array_name ~batch ~row_lo ~col_lo ~rows ~cols ~buf ~copy
    ~reply ~rcopy =
  dma_message t c ~put:true ~array_name ~batch ~row_lo ~col_lo ~rows ~cols
    ~buf ~copy ~reply ~rcopy

let rma_bcast t c ~dir ~src ~dst ~rows ~cols ~root ~reply_s ~reply_r ~rcopy =
  let src_buf, src_copy = src and dst_buf, dst_copy = dst in
  let my_coord = match dir with `Row -> c.cid | `Col -> c.rid in
  let send_counter = reply_counter c ~reply:reply_s ~rcopy in
  let recv_counter = reply_counter c ~reply:reply_r ~rcopy in
  Engine.counter_reset send_counter;
  Engine.counter_reset recv_counter;
  Hashtbl.replace t.reply_rma reply_s true;
  Hashtbl.replace t.reply_rma reply_r true;
  if my_coord <> root then
    (* this CPE sends nothing; its send counter is trivially satisfied *)
    Engine.counter_incr send_counter
  else begin
    let peers =
      match dir with
      | `Row -> Array.to_list (Array.map (fun col -> col) t.cpes.(c.rid))
      | `Col -> Array.to_list (Array.map (fun row -> row.(c.cid)) t.cpes)
    in
    let link =
      match dir with `Row -> t.row_links.(c.rid) | `Col -> t.col_links.(c.cid)
    in
    let bytes = 8 * rows * cols in
    let start_finish = ref (0.0, 0.0) in
    let interval =
      Engine.transfer ?faults:t.faults link ~bytes ~on_complete:(fun () ->
          let start, finish = !start_finish in
          Spm.note_read c.spm src_buf ~copy:src_copy ~start ~finish;
          List.iter
            (fun (peer : cpe) ->
              Spm.note_write peer.spm dst_buf ~copy:dst_copy ~start ~finish;
              if t.functional then begin
                let s = Spm.tile c.spm src_buf ~copy:src_copy in
                let d = Spm.tile peer.spm dst_buf ~copy:dst_copy in
                Array.blit s 0 d 0 (rows * cols)
              end;
              maybe_flip t peer.spm ~buf:dst_buf ~copy:dst_copy
                ~elems:(rows * cols);
              deliver_increment t (reply_counter peer ~reply:reply_r ~rcopy))
            peers;
          deliver_increment t send_counter)
    in
    start_finish := interval;
    let start, finish = interval in
    trace_event t c (Trace.Rma { bytes; sender = true }) ~start ~finish
  end

let reply_is_rma t reply =
  match Hashtbl.find_opt t.reply_rma reply with Some b -> b | None -> false

let note_wait t ~rma ~start ~finish =
  match (if rma then t.m_wait_rma else t.m_wait_dma) with
  | None -> ()
  | Some h -> Sw_obs.Metrics.observe h (finish -. start)

let wait_reply t c ~reply ~rcopy =
  let start = Engine.now t.engine in
  Engine.await (reply_counter c ~reply ~rcopy) 1;
  let finish = Engine.now t.engine in
  let rma = reply_is_rma t reply in
  note_wait t ~rma ~start ~finish;
  trace_event t c (Trace.Wait_reply { reply; rma }) ~start ~finish

(* Like [wait_reply] but gives up after [timeout] simulated seconds; the
   interpreter's retry policy builds on this. Returns [true] when the reply
   arrived, [false] on timeout (the event is still traced either way so the
   forensic timeline shows the stalled wait). *)
let wait_reply_deadline t c ~reply ~rcopy ~timeout =
  let start = Engine.now t.engine in
  let ok = Engine.await_deadline (reply_counter c ~reply ~rcopy) 1 ~timeout in
  let finish = Engine.now t.engine in
  let rma = reply_is_rma t reply in
  note_wait t ~rma ~start ~finish;
  trace_event t c (Trace.Wait_reply { reply; rma }) ~start ~finish;
  ok

let sync t (c : cpe) =
  let start = Engine.now t.engine in
  Engine.barrier_wait t.barrier;
  Engine.delay t.config.Config.sync_latency_s;
  trace_event t c Trace.Barrier ~start ~finish:(Engine.now t.engine)

let kernel t c ~c:(cb, cc) ~a:(ab, ac) ~b:(bb, bc) ~m ~n ~k ~alpha ~accumulate
    ~ta ~tb ~style =
  let dur = Config.micro_kernel_seconds t.config ~style ~m ~n ~k in
  (* straggler CPEs run their compute slower (thermal throttling / a busy
     neighbour on the real mesh); membership is a pure function of the fault
     seed and the CPE coordinates, so it is program-independent *)
  let dur =
    match t.faults with
    | None -> dur
    | Some f -> dur *. Fault.kernel_slowdown f ~rid:c.rid ~cid:c.cid
  in
  let start = Engine.now t.engine in
  let finish = start +. dur in
  Spm.note_read c.spm ab ~copy:ac ~start ~finish;
  Spm.note_read c.spm bb ~copy:bc ~start ~finish;
  (* the kernel both reads and writes its C tile; a single write note keeps
     the read-modify-write from racing against itself while still clashing
     with any overlapping DMA or RMA window (note_write checks both the last
     read and the last write) *)
  Spm.note_write c.spm cb ~copy:cc ~start ~finish;
  if t.functional then
    Sw_kernels.Micro.dgemm_tile_t ~ta ~tb ~m ~n ~k ~alpha ~accumulate
      ~a:(Spm.tile c.spm ab ~copy:ac)
      ~ao:0
      ~b:(Spm.tile c.spm bb ~copy:bc)
      ~bo:0
      ~c:(Spm.tile c.spm cb ~copy:cc)
      ~co:0;
  trace_event t c Trace.Kernel ~start ~finish;
  Engine.delay dur

let spm_map t c ~buf:(buf, copy) ~rows ~cols ~fn =
  let elems = rows * cols in
  let dur =
    float_of_int elems *. t.config.Config.ew_cpe_cycles_per_elem
    /. t.config.Config.cpe_freq_hz
  in
  let start = Engine.now t.engine in
  let finish = start +. dur in
  (* in-place read-modify-write: a single write note, as in [kernel] *)
  Spm.note_write c.spm buf ~copy ~start ~finish;
  if t.functional then
    Sw_kernels.Elementwise.apply fn (Spm.tile c.spm buf ~copy) ~off:0 ~len:elems;
  trace_event t c Trace.Spm_op ~start ~finish;
  Engine.delay dur
