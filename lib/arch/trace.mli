(** Execution traces of simulated runs.

    When a trace sink is attached to the cluster, every primitive records
    its time interval: kernel invocations, DMA and RMA transfers (as seen
    by the issuing/sending CPE), SPM element-wise passes, and the blocked
    intervals spent in reply waits and barriers. The analysis functions
    quantify exactly the effect §6 of the paper is about: how much
    communication latency is exposed on the critical path versus hidden
    behind computation. *)

type kind =
  | Kernel
  | Spm_op  (** element-wise pass *)
  | Dma of { bytes : int; put : bool }
  | Rma of { bytes : int; sender : bool }
  | Wait_reply of { reply : string; rma : bool }
      (** [reply] is the counter name; [rma] tells whether the reply was
          armed by an RMA broadcast (else a DMA transfer) — the profiler
          uses it to attribute exposed latency to a pipeline level. *)
  | Barrier

val is_wait : kind -> bool

type event = { rid : int; cid : int; kind : kind; start : float; finish : float }

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** In recording order. *)

val instant : event -> bool
(** [true] for zero-duration events (e.g. a wait satisfied at issue).
    They are recorded — dropping them would hide exactly the instants a
    forensic timeline needs — but excluded from busy-time accounting by
    construction (their interval is empty). *)

val busy : t -> rid:int -> cid:int -> kind:(kind -> bool) -> float
(** Total time one CPE spent in events matching the predicate. *)

type utilization = {
  span : float;  (** first start to last finish *)
  kernel_frac : float;  (** mean over CPEs of kernel busy / span *)
  blocked_frac : float;  (** mean fraction spent blocked (waits + barriers) *)
  dma_bytes : int;
  rma_bytes : int;
}

val utilization : t -> mesh:int * int -> utilization
(** An empty trace — or one holding only zero-duration instants — has no
    span; the result is then all zeros rather than a division by zero. *)

val gantt : t -> rid:int -> cid:int -> width:int -> string
(** ASCII lane of one CPE's activity: [K] kernel, [D] DMA wait-side,
    [R] RMA, [w] blocked, [.] idle. Intended for small runs. *)

val summary : t -> mesh:int * int -> string
