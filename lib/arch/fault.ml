(* Seeded, deterministic fault plans for the simulated cluster.

   A plan owns a private PRNG seeded from [seed]; injection sites draw from
   it in simulated-event order, which the engine makes deterministic, so a
   (program, plan) pair always produces the same perturbed execution. Each
   draw only happens when its fault kind is enabled, so restricting [kinds]
   never reshuffles the remaining kinds' decisions across runs with the
   same seed and spec. *)

type kind = Jitter | Stall | Delay_reply | Drop_reply | Straggler | Flip

let all_kinds = [ Jitter; Stall; Delay_reply; Drop_reply; Straggler; Flip ]

let kind_to_string = function
  | Jitter -> "jitter"
  | Stall -> "stall"
  | Delay_reply -> "delay"
  | Drop_reply -> "drop"
  | Straggler -> "straggler"
  | Flip -> "flip"

let kind_of_string = function
  | "jitter" -> Some Jitter
  | "stall" -> Some Stall
  | "delay" -> Some Delay_reply
  | "drop" -> Some Drop_reply
  | "straggler" -> Some Straggler
  | "flip" -> Some Flip
  | _ -> None

type spec = {
  kinds : kind list;
  jitter_frac : float;
  stall_prob : float;
  stall_s : float;
  delay_prob : float;
  delay_s : float;
  drop_prob : float;
  drop_permanent_frac : float;
  redeliver_s : float;
  straggler_frac : float;
  straggler_slowdown : float;
  flip_prob : float;
  flip_magnitude : float;
}

let default_spec =
  {
    kinds = all_kinds;
    jitter_frac = 0.25;
    stall_prob = 0.02;
    stall_s = 20.0e-6;
    delay_prob = 0.05;
    delay_s = 10.0e-6;
    drop_prob = 0.01;
    drop_permanent_frac = 0.05;
    redeliver_s = 200.0e-6;
    straggler_frac = 0.10;
    straggler_slowdown = 3.0;
    flip_prob = 0.002;
    flip_magnitude = 1.0;
  }

let spec_with ~kinds spec = { spec with kinds }

type t = {
  spec : spec;
  seed : int;
  rng : Random.State.t;
  counts : int array;  (* injections performed, indexed by kind *)
  (* mirror counters in the ambient metrics registry (if one was installed
     when the plan was built), labelled by kind *)
  m_inject : Sw_obs.Metrics.counter array option;
}

let kind_index = function
  | Jitter -> 0
  | Stall -> 1
  | Delay_reply -> 2
  | Drop_reply -> 3
  | Straggler -> 4
  | Flip -> 5

let plan ?(spec = default_spec) ~seed () =
  {
    spec;
    seed;
    rng = Random.State.make [| 0x5057; seed |];
    counts = Array.make 6 0;
    m_inject =
      Option.map
        (fun r ->
          Array.of_list
            (List.map
               (fun k ->
                 Sw_obs.Metrics.counter r
                   ~labels:[ ("kind", kind_to_string k) ]
                   "fault.injections_total")
               all_kinds))
        (Sw_obs.Metrics.current ());
  }

let seed t = t.seed
let enabled t k = List.mem k t.spec.kinds

let bump t k =
  t.counts.(kind_index k) <- t.counts.(kind_index k) + 1;
  match t.m_inject with
  | None -> ()
  | Some arr -> Sw_obs.Metrics.incr arr.(kind_index k)

let stats t =
  List.filter_map
    (fun k ->
      let n = t.counts.(kind_index k) in
      if n > 0 then Some (k, n) else None)
    all_kinds

let stats_to_string t =
  match stats t with
  | [] -> "none injected"
  | l ->
      String.concat " "
        (List.map (fun (k, n) -> Printf.sprintf "%s=%d" (kind_to_string k) n) l)

(* ------------------------------------------------------------------ *)
(* Injection decisions                                                  *)
(* ------------------------------------------------------------------ *)

type channel_perturb = { stall_s : float; slowdown : float }

let channel_perturb t =
  let slowdown =
    if enabled t Jitter && t.spec.jitter_frac > 0.0 then begin
      let j = Random.State.float t.rng t.spec.jitter_frac in
      if j > 0.0 then bump t Jitter;
      1.0 +. j
    end
    else 1.0
  in
  let stall_s =
    if enabled t Stall && Random.State.float t.rng 1.0 < t.spec.stall_prob then begin
      bump t Stall;
      t.spec.stall_s
    end
    else 0.0
  in
  { stall_s; slowdown }

type disposition =
  | Deliver
  | Delay of float
  | Drop of { redeliver_after : float }
  | Drop_forever

let reply_disposition t =
  if enabled t Drop_reply && Random.State.float t.rng 1.0 < t.spec.drop_prob
  then begin
    bump t Drop_reply;
    if Random.State.float t.rng 1.0 < t.spec.drop_permanent_frac then Drop_forever
    else Drop { redeliver_after = t.spec.redeliver_s }
  end
  else if
    enabled t Delay_reply && Random.State.float t.rng 1.0 < t.spec.delay_prob
  then begin
    bump t Delay_reply;
    Delay (Random.State.float t.rng t.spec.delay_s)
  end
  else Deliver

(* Straggler CPEs are chosen by the plan seed, not by draw order, so the
   set is stable for a given seed regardless of the program. *)
let is_straggler t ~rid ~cid =
  enabled t Straggler
  && t.spec.straggler_frac > 0.0
  && Hashtbl.hash (0x57A6, t.seed, rid, cid) mod 1024
     < int_of_float (t.spec.straggler_frac *. 1024.0)

let kernel_slowdown t ~rid ~cid =
  if is_straggler t ~rid ~cid then begin
    bump t Straggler;
    t.spec.straggler_slowdown
  end
  else 1.0

let flip t ~elems =
  if elems > 0 && enabled t Flip && Random.State.float t.rng 1.0 < t.spec.flip_prob
  then begin
    bump t Flip;
    Some
      ( Random.State.int t.rng elems,
        (Random.State.float t.rng 2.0 -. 1.0) *. t.spec.flip_magnitude )
  end
  else None
