(* Map simulated-cluster traces onto the observability layer: per-CPE
   profiler samples for the latency-hiding analysis, and per-CPE Chrome
   trace tracks (pid 0, one tid per CPE) for Perfetto. *)

let track_name ~rid ~cid = Printf.sprintf "CPE(%d,%d)" rid cid

let sample_cls = function
  | Trace.Kernel | Trace.Spm_op -> Some Sw_obs.Profile.Compute
  | Trace.Dma _ -> Some (Sw_obs.Profile.Comm Sw_obs.Profile.Dma)
  | Trace.Rma { sender = true; _ } ->
      Some (Sw_obs.Profile.Comm Sw_obs.Profile.Rma)
  | Trace.Rma _ -> None
  | Trace.Wait_reply { rma; _ } ->
      Some
        (Sw_obs.Profile.Wait
           (if rma then Sw_obs.Profile.Rma else Sw_obs.Profile.Dma))
  | Trace.Barrier -> Some Sw_obs.Profile.Barrier

let samples trace =
  List.filter_map
    (fun (e : Trace.event) ->
      match sample_cls e.Trace.kind with
      | None -> None
      | Some cls ->
          Some
            {
              Sw_obs.Profile.track = track_name ~rid:e.Trace.rid ~cid:e.Trace.cid;
              cls;
              start = e.Trace.start;
              finish = e.Trace.finish;
            })
    (Trace.events trace)

let profile trace = Sw_obs.Profile.analyze (samples trace)

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                  *)
(* ------------------------------------------------------------------ *)

let event_name = function
  | Trace.Kernel -> ("kernel", "compute")
  | Trace.Spm_op -> ("spm_op", "compute")
  | Trace.Dma { put = true; _ } -> ("dma_put", "dma")
  | Trace.Dma _ -> ("dma_get", "dma")
  | Trace.Rma { sender = true; _ } -> ("rma_bcast", "rma")
  | Trace.Rma _ -> ("rma_recv", "rma")
  | Trace.Wait_reply _ -> ("wait_reply", "wait")
  | Trace.Barrier -> ("barrier", "wait")

let event_args = function
  | Trace.Dma { bytes; put } ->
      [ ("bytes", Sw_obs.Span.I bytes); ("put", Sw_obs.Span.B put) ]
  | Trace.Rma { bytes; sender } ->
      [ ("bytes", Sw_obs.Span.I bytes); ("sender", Sw_obs.Span.B sender) ]
  | Trace.Wait_reply { reply; rma } ->
      [
        ("reply", Sw_obs.Span.S reply);
        ("level", Sw_obs.Span.S (if rma then "rma" else "dma"));
      ]
  | Trace.Kernel | Trace.Spm_op | Trace.Barrier -> []

let to_chrome trace ~mesh:(rows, cols) sink =
  Sw_obs.Span.set_process_name sink ~pid:Sw_obs.Span.sim_pid
    "simulated cluster (simulated time)";
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Sw_obs.Span.set_thread_name sink ~pid:Sw_obs.Span.sim_pid
        ~tid:((r * cols) + c)
        (track_name ~rid:r ~cid:c)
    done
  done;
  List.iter
    (fun (e : Trace.event) ->
      let name, cat = event_name e.Trace.kind in
      let args = event_args e.Trace.kind in
      let tid = (e.Trace.rid * cols) + e.Trace.cid in
      let ts_us = 1e6 *. e.Trace.start in
      if Trace.instant e then
        Sw_obs.Span.instant sink ~cat ~args ~pid:Sw_obs.Span.sim_pid ~tid
          ~ts_us name
      else
        Sw_obs.Span.complete sink ~cat ~args ~pid:Sw_obs.Span.sim_pid ~tid
          ~ts_us
          ~dur_us:(1e6 *. (e.Trace.finish -. e.Trace.start))
          name)
    (Trace.events trace)
