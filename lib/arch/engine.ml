(* Binary min-heap on (time, seq) keys, specialized to event closures so
   popped slots can be cleared: a generic heap would keep completed fiber
   closures (and everything they capture) reachable through the unused tail
   of the backing array for the whole run. *)
module Heap = struct
  type entry = { time : float; seq : int; payload : unit -> unit }

  type t = { mutable data : entry array; mutable size : int }

  let dummy = { time = neg_infinity; seq = min_int; payload = ignore }

  let create () = { data = [||]; size = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.data then begin
      let cap = max 64 (2 * h.size) in
      let data = Array.make cap dummy in
      Array.blit h.data 0 data 0 h.size;
      h.data <- data
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    (* sift up *)
    let i = ref (h.size - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less h.data.(!i) h.data.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        (* sift down *)
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
          if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            let tmp = h.data.(!smallest) in
            h.data.(!smallest) <- h.data.(!i);
            h.data.(!i) <- tmp;
            i := !smallest
          end
          else continue := false
        done
      end;
      (* clear the vacated slot so the popped closure is collectable, and
         shrink at quarter occupancy to bound the high-water footprint *)
      h.data.(h.size) <- dummy;
      let cap = Array.length h.data in
      if cap > 64 && h.size <= cap / 4 then begin
        let data = Array.make (cap / 2) dummy in
        Array.blit h.data 0 data 0 h.size;
        h.data <- data
      end;
      Some top
    end
end

type watchdog = {
  max_sim_s : float option;
  max_events : int option;
  max_host_s : float option;
}

let no_watchdog = { max_sim_s = None; max_events = None; max_host_s = None }

type t = {
  mutable clock : float;
  mutable seq : int;
  heap : Heap.t;
  mutable blocked : int;  (* fibers parked on counters/barriers *)
  mutable counters : counter list;  (* registry, for deadlock forensics *)
  mutable ncounters : int;
  mutable watchdog : watchdog;
  mutable events_run : int;
  mutable host_start : float;
  (* instruments resolved once at creation from the ambient registry, so
     the per-event cost when metrics are on is one observation and when
     off a single match on None *)
  m_queue_depth : Sw_obs.Metrics.histogram option;
  m_events : Sw_obs.Metrics.counter option;
}

and counter = {
  eng : t;
  cname : string;
  mutable value : int;
  mutable waiters : waiter list;
}

and waiter = {
  target : int;
  label : string;  (* identity of the parked fiber *)
  parked_at : float;
  resume : unit -> unit;
  mutable woken : bool;  (* set on wake or timeout: at most one resume *)
}

let create () =
  {
    clock = 0.0;
    seq = 0;
    heap = Heap.create ();
    blocked = 0;
    counters = [];
    ncounters = 0;
    watchdog = no_watchdog;
    events_run = 0;
    host_start = 0.0;
    m_queue_depth =
      Option.map
        (fun r ->
          Sw_obs.Metrics.histogram r ~lower:1.0 ~growth:2.0 ~buckets:24
            "sim.queue_depth")
        (Sw_obs.Metrics.current ());
    m_events =
      Option.map
        (fun r -> Sw_obs.Metrics.counter r "sim.events_total")
        (Sw_obs.Metrics.current ());
  }

let now t = t.clock

let set_watchdog t w = t.watchdog <- w
let events_run t = t.events_run

let push t ~at payload =
  if at < t.clock then
    raise
      (Error.Sim_error
         (Error.Invalid
            (Printf.sprintf "Engine: scheduling into the past (%.6g < %.6g)" at
               t.clock)));
  t.seq <- t.seq + 1;
  Heap.push t.heap { Heap.time = at; seq = t.seq; payload };
  match t.m_queue_depth with
  | None -> ()
  | Some h -> Sw_obs.Metrics.observe h (float_of_int t.heap.Heap.size)

let schedule t ~after f = push t ~at:(t.clock +. after) f

(* Effects performed by fibers. *)
type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Await : (counter * int) -> unit Effect.t
  | Await_deadline : (counter * int * float) -> bool Effect.t

let delay d = if d > 0.0 then Effect.perform (Delay d)

let await c n = if c.value < n then Effect.perform (Await (c, n))

let await_deadline c n ~timeout =
  if c.value >= n then true else Effect.perform (Await_deadline (c, n, timeout))

let exec t ~label f =
  let open Effect.Deep in
  try_with f ()
    {
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, _) continuation) ->
                  push t ~at:(t.clock +. d) (fun () -> continue k ()))
          | Await (c, n) ->
              Some
                (fun (k : (a, _) continuation) ->
                  if c.value >= n then continue k ()
                  else begin
                    t.blocked <- t.blocked + 1;
                    c.waiters <-
                      {
                        target = n;
                        label;
                        parked_at = t.clock;
                        resume = (fun () -> continue k ());
                        woken = false;
                      }
                      :: c.waiters
                  end)
          | Await_deadline (c, n, timeout) ->
              Some
                (fun (k : (a, _) continuation) ->
                  if c.value >= n then continue k true
                  else begin
                    let w =
                      {
                        target = n;
                        label;
                        parked_at = t.clock;
                        resume = (fun () -> continue k true);
                        woken = false;
                      }
                    in
                    t.blocked <- t.blocked + 1;
                    c.waiters <- w :: c.waiters;
                    push t ~at:(t.clock +. timeout) (fun () ->
                        if not w.woken then begin
                          w.woken <- true;
                          c.waiters <- List.filter (fun w' -> w' != w) c.waiters;
                          t.blocked <- t.blocked - 1;
                          continue k false
                        end)
                  end)
          | _ -> None);
    }

let spawn ?label t f =
  let label =
    match label with Some l -> l | None -> Printf.sprintf "fiber-%d" t.seq
  in
  push t ~at:t.clock (fun () -> exec t ~label f)

(* Quiescence report: every fiber still parked on a registered counter. *)
let blocked_fibers t =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun w ->
          if w.woken then None
          else
            Some
              {
                Error.fiber = w.label;
                counter = c.cname;
                current = c.value;
                awaited = w.target;
                parked_at = w.parked_at;
              })
        c.waiters)
    t.counters
  |> List.sort (fun (a : Error.blocked) b ->
         compare (a.Error.fiber, a.Error.counter) (b.Error.fiber, b.Error.counter))

let check_watchdog t =
  let w = t.watchdog in
  (match w.max_events with
  | Some n when t.events_run > n ->
      raise
        (Error.Sim_error
           (Error.Watchdog
              { limit = `Events n; sim_time = t.clock; events_run = t.events_run }))
  | _ -> ());
  (match w.max_sim_s with
  | Some s when t.clock > s ->
      raise
        (Error.Sim_error
           (Error.Watchdog
              { limit = `Sim_time s; sim_time = t.clock; events_run = t.events_run }))
  | _ -> ());
  match w.max_host_s with
  | Some s when t.events_run land 4095 = 0 && Sys.time () -. t.host_start > s ->
      raise
        (Error.Sim_error
           (Error.Watchdog
              { limit = `Host_time s; sim_time = t.clock; events_run = t.events_run }))
  | _ -> ()

let armed w = w.max_sim_s <> None || w.max_events <> None || w.max_host_s <> None

let run t =
  t.host_start <- Sys.time ();
  let events_at_entry = t.events_run in
  let guarded = armed t.watchdog in
  let rec loop () =
    match Heap.pop t.heap with
    | None -> ()
    | Some e ->
        t.clock <- e.Heap.time;
        t.events_run <- t.events_run + 1;
        if guarded then check_watchdog t;
        e.Heap.payload ();
        loop ()
  in
  loop ();
  (match t.m_events with
  | None -> ()
  | Some c -> Sw_obs.Metrics.incr ~by:(t.events_run - events_at_entry) c);
  if t.blocked > 0 then
    raise
      (Error.Sim_error
         (Error.Deadlock
            {
              sim_time = t.clock;
              events_run = t.events_run;
              fibers = blocked_fibers t;
            }));
  t.clock

let new_counter ?name eng =
  let cname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "counter-%d" eng.ncounters
  in
  let c = { eng; cname; value = 0; waiters = [] } in
  eng.counters <- c :: eng.counters;
  eng.ncounters <- eng.ncounters + 1;
  c

let counter_value c = c.value
let counter_name c = c.cname

let counter_reset c =
  if List.exists (fun w -> not w.woken) c.waiters then
    raise
      (Error.Sim_error
         (Error.Invalid
            (Printf.sprintf "Engine.counter_reset: %s has live waiters" c.cname)));
  c.waiters <- [];
  c.value <- 0

let counter_incr c =
  c.value <- c.value + 1;
  let ready, still = List.partition (fun w -> c.value >= w.target) c.waiters in
  c.waiters <- still;
  List.iter
    (fun w ->
      if not w.woken then begin
        w.woken <- true;
        c.eng.blocked <- c.eng.blocked - 1;
        push c.eng ~at:c.eng.clock w.resume
      end)
    ready

type barrier = { parties : int; arrivals : counter }

let new_barrier ?(name = "barrier") t ~parties =
  { parties; arrivals = new_counter ~name t }

let barrier_wait b =
  let n = counter_value b.arrivals + 1 in
  let round = ((n - 1) / b.parties) + 1 in
  counter_incr b.arrivals;
  await b.arrivals (round * b.parties)

type channel = {
  ceng : t;
  bw : float;
  latency : float;
  mutable busy_until : float;
}

let new_channel t ~bw_bytes_per_s ~latency_s =
  { ceng = t; bw = bw_bytes_per_s; latency = latency_s; busy_until = 0.0 }

let transfer ?faults ch ~bytes ~on_complete =
  let t = ch.ceng in
  let dur = float_of_int bytes /. ch.bw in
  let dur =
    match faults with
    | None -> dur
    | Some f ->
        let p = Fault.channel_perturb f in
        p.Fault.stall_s +. (dur *. p.Fault.slowdown)
  in
  let start = Float.max t.clock ch.busy_until in
  let drained = start +. dur in
  ch.busy_until <- drained;
  let finish = drained +. ch.latency in
  push t ~at:finish on_complete;
  (start, finish)

let channel_busy_until ch = ch.busy_until
