(** One SW26010Pro cluster: the 8x8 CPE mesh with its SPMs, the shared
    memory controller (DMA), the row/column RMA links and the mesh barrier.

    The functions in the "athread primitives" section implement the exact
    semantics of the interfaces of §4–§5 of the paper and must be called
    from within a CPE fiber (see {!Interp}): non-blocking issues return
    immediately, completions increment reply counters, and
    {!wait_reply}/{!sync} block the calling fiber.

    Every data movement and every tile read is stamped with its simulated
    time interval; overlapping write/read windows on the same SPM buffer
    copy are recorded as races (see {!Spm}) — this is what double buffering
    (§6.3) exists to prevent, and breaking it is observable in tests. *)

type cpe = {
  rid : int;
  cid : int;
  spm : Spm.t;
  replies : (string, Engine.counter array) Hashtbl.t;
}

type t = {
  config : Config.t;
  engine : Engine.t;
  mem : Mem.t;
  cpes : cpe array array;
  dma : Engine.channel;
  row_links : Engine.channel array;
  col_links : Engine.channel array;
  barrier : Engine.barrier;
  functional : bool;
  trace : Trace.t option;
  faults : Fault.t option;
  reply_rma : (string, bool) Hashtbl.t;
      (** which primitive last armed each reply counter name ([true] =
          RMA broadcast, [false] = DMA): wait events use it to attribute
          exposed latency to a pipeline level *)
  m_wait_dma : Sw_obs.Metrics.histogram option;
      (** reply-wait latency instruments, resolved once at {!create} from
          the ambient {!Sw_obs.Metrics} registry; [None] when metrics are
          off, making every observation a single match *)
  m_wait_rma : Sw_obs.Metrics.histogram option;
}

val create :
  ?trace:Trace.t -> ?faults:Fault.t -> config:Config.t -> functional:bool ->
  mem:Mem.t -> unit -> t
(** With [?faults], every transfer, reply delivery and kernel launch is
    perturbed by the plan (see {!Fault}); without it the fault hooks are
    compiled-away [None] branches and timings are bit-identical to a
    fault-free build. *)

val cpe : t -> rid:int -> cid:int -> cpe
val iter_cpes : t -> (cpe -> unit) -> unit

val alloc_buffers : t -> Sw_ast.Ast.spm_decl list -> unit
(** Allocate the same buffers on every CPE; raises {!Error.Sim_error}
    ([Overflow]) on SPM overflow. *)

val alloc_replies : t -> string list -> unit
(** Create a double reply counter (two parity slots) per name per CPE. *)

val races : t -> Error.race list
(** All races detected on any CPE, sorted by (rid, cid, buffer, copy,
    time) so reports are deterministic. *)

(** {2 Athread primitives} (call from a CPE fiber) *)

val dma_get :
  t -> cpe -> array_name:string -> batch:int option -> row_lo:int ->
  col_lo:int -> rows:int -> cols:int -> buf:string -> copy:int ->
  reply:string -> rcopy:int -> unit

val dma_put :
  t -> cpe -> array_name:string -> batch:int option -> row_lo:int ->
  col_lo:int -> rows:int -> cols:int -> buf:string -> copy:int ->
  reply:string -> rcopy:int -> unit

val rma_bcast :
  t -> cpe -> dir:[ `Row | `Col ] -> src:string * int -> dst:string * int ->
  rows:int -> cols:int -> root:int -> reply_s:string -> reply_r:string ->
  rcopy:int -> unit
(** SPMD broadcast: every CPE of the mesh calls this; the one whose
    row/column coordinate equals [root] is the sender and occupies the
    link. Non-senders only arm their receive counter; the sender's
    completion increments [reply_r] on every CPE of its row/column and
    [reply_s] on itself (non-senders' [reply_s] is satisfied at issue, as
    they send nothing). *)

val wait_reply : t -> cpe -> reply:string -> rcopy:int -> unit

val wait_reply_deadline :
  t -> cpe -> reply:string -> rcopy:int -> timeout:float -> bool
(** [wait_reply] with a simulated-time deadline: [false] means the reply
    did not arrive within [timeout] seconds and the caller should retry or
    degrade (see {!Interp} retry policy). *)

val sync : t -> cpe -> unit
val kernel : t -> cpe -> c:string * int -> a:string * int -> b:string * int ->
  m:int -> n:int -> k:int -> alpha:float -> accumulate:bool ->
  ta:bool -> tb:bool -> style:[ `Asm | `Naive ] -> unit
val spm_map : t -> cpe -> buf:string * int -> rows:int -> cols:int -> fn:string -> unit
