(* Typed errors of the simulated cluster. One variant per failure class so
   harnesses can match on the cause instead of parsing strings; every
   constructor carries enough forensics (CPE coordinates, counter names,
   simulated times) to localize the failing protocol step. *)

type conflict = {
  buffer : string;
  copy : int;
  kind : [ `Write_read | `Write_write | `Read_write ];
  op_start : float;
  op_finish : float;
  prev_start : float;
  prev_finish : float;
}

type race = { rid : int; cid : int; conflict : conflict }

type blocked = {
  fiber : string;  (* label of the parked fiber, e.g. "CPE(2,3)" *)
  counter : string;  (* reply counter or barrier it is parked on *)
  current : int;  (* the counter's value at quiescence *)
  awaited : int;  (* the value the fiber is waiting for *)
  parked_at : float;  (* simulated time at which it blocked *)
}

type diagnosis = {
  sim_time : float;  (* clock when the event queue drained *)
  events_run : int;
  fibers : blocked list;  (* every fiber still parked, sorted *)
}

type t =
  | Deadlock of diagnosis
  | Race of race list
  | Bounds of { array_name : string; detail : string }
  | Overflow of { buffer : string; needed : int; available : int; capacity : int }
  | Fault_exhausted of {
      fiber : string;
      counter : string;
      retries : int;
      sim_time : float;
    }
  | Watchdog of {
      limit : [ `Sim_time of float | `Events of int | `Host_time of float ];
      sim_time : float;
      events_run : int;
    }
  | Invalid of string
  | Timeout of { stage : string; elapsed_s : float; deadline_s : float }
  | Overloaded of { in_flight : int; queued : int; limit : int }
  | Store_corrupt of { key : string; path : string; detail : string }
  | Circuit_open of {
      shape_class : string;
      failures : int;
      cooldown_s : float;
    }

exception Sim_error of t

(* One stable lowercase token per variant. The token appears verbatim in
   the corresponding to_string output, so both programmatic matching and
   log grepping key on the same word; tests pin this. *)
let class_of = function
  | Deadlock _ -> "deadlock"
  | Race _ -> "race"
  | Bounds _ -> "bounds"
  | Overflow _ -> "overflow"
  | Fault_exhausted _ -> "fault_exhausted"
  | Watchdog _ -> "watchdog"
  | Invalid _ -> "invalid"
  | Timeout _ -> "timeout"
  | Overloaded _ -> "overloaded"
  | Store_corrupt _ -> "store_corrupt"
  | Circuit_open _ -> "circuit_open"

(* Would a retry plausibly succeed? Transient classes (timing faults that
   exhausted their in-run recovery, budget expiries, a quarantined store
   entry that the next attempt recompiles) are worth retrying; structural
   failures (deadlock, race, bounds, overflow, malformed input) and the
   supervisor's own verdicts (timeout of the total budget, shed load, open
   breaker) are deterministic and are not. *)
let retryable = function
  | Fault_exhausted _ | Watchdog _ | Store_corrupt _ -> true
  | Deadlock _ | Race _ | Bounds _ | Overflow _ | Invalid _ | Timeout _
  | Overloaded _ | Circuit_open _ ->
      false

let conflict_to_string c =
  let verb, prev =
    match c.kind with
    | `Write_read -> ("write", "read")
    | `Write_write -> ("write", "write")
    | `Read_write -> ("read", "write")
  in
  Printf.sprintf "%s of %s[%d] during [%.3g, %.3g] overlaps %s during [%.3g, %.3g]"
    verb c.buffer c.copy c.op_start c.op_finish prev c.prev_start c.prev_finish

let race_to_string r =
  Printf.sprintf "CPE(%d,%d): %s" r.rid r.cid (conflict_to_string r.conflict)

(* Deterministic order: by CPE coordinates, then buffer/copy, then time. *)
let compare_race a b =
  let c = compare (a.rid, a.cid) (b.rid, b.cid) in
  if c <> 0 then c
  else
    let c =
      compare (a.conflict.buffer, a.conflict.copy) (b.conflict.buffer, b.conflict.copy)
    in
    if c <> 0 then c else compare a.conflict.op_start b.conflict.op_start

let blocked_to_string b =
  Printf.sprintf "%s awaiting %s >= %d (currently %d), parked at t=%.6gs" b.fiber
    b.counter b.awaited b.current b.parked_at

let diagnosis_to_string d =
  Printf.sprintf "deadlock at t=%.6gs after %d event(s), %d fiber(s) blocked:\n%s"
    d.sim_time d.events_run
    (List.length d.fibers)
    (String.concat "\n"
       (List.map (fun b -> "  " ^ blocked_to_string b) d.fibers))

let to_string = function
  | Deadlock d -> diagnosis_to_string d
  | Race rs ->
      Printf.sprintf "%d race(s) detected:\n%s" (List.length rs)
        (String.concat "\n" (List.map (fun r -> "  " ^ race_to_string r) rs))
  | Bounds { array_name; detail } ->
      Printf.sprintf "out-of-bounds access to %s: %s" array_name detail
  | Overflow { buffer; needed; available; capacity } ->
      Printf.sprintf
        "SPM overflow: %s needs %d bytes but only %d of %d remain" buffer needed
        available capacity
  | Fault_exhausted { fiber; counter; retries; sim_time } ->
      Printf.sprintf
        "fault_exhausted: %s: wait on %s still unsatisfied after %d retr%s \
         at t=%.6gs"
        fiber counter retries
        (if retries = 1 then "y" else "ies")
        sim_time
  | Watchdog { limit; sim_time; events_run } ->
      let l =
        match limit with
        | `Sim_time s -> Printf.sprintf "simulated-time budget %.6gs" s
        | `Events n -> Printf.sprintf "event budget %d" n
        | `Host_time s -> Printf.sprintf "host wall-clock budget %.3gs" s
      in
      Printf.sprintf "watchdog: %s exceeded at t=%.6gs after %d event(s)" l
        sim_time events_run
  | Invalid s -> "invalid: " ^ s
  | Timeout { stage; elapsed_s; deadline_s } ->
      Printf.sprintf
        "timeout: %s exceeded the %.3gs request deadline (elapsed %.3gs)"
        stage deadline_s elapsed_s
  | Overloaded { in_flight; queued; limit } ->
      Printf.sprintf
        "overloaded: %d request(s) in flight and %d queued (queue limit \
         %d); request shed"
        in_flight queued limit
  | Store_corrupt { key; path; detail } ->
      Printf.sprintf "store_corrupt: entry %s at %s quarantined: %s" key path
        detail
  | Circuit_open { shape_class; failures; cooldown_s } ->
      Printf.sprintf
        "circuit_open: shape class '%s' tripped after %d consecutive \
         failure(s); degraded for %.3gs"
        shape_class failures cooldown_s

let () =
  Printexc.register_printer (function
    | Sim_error e -> Some ("Sw_arch.Error.Sim_error: " ^ to_string e)
    | _ -> None)
