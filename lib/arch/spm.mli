(** Software-managed scratch-pad memory of one CPE (§2.1: 256 KB on the
    SW26010Pro), with capacity accounting and read/write interval tracking
    used to detect double-buffering races.

    A buffer holds [copies] identical tiles of [rows x cols] doubles; copy
    indices implement the double buffering of §6.3. Every read and write is
    stamped with its simulated time interval; an overlap between a write
    and a read of the same copy is recorded as a race (it would be silent
    data corruption on the real hardware). *)

type t

val create : capacity_bytes:int -> functional:bool -> t
(** With [functional = false] no data is stored, only capacity and race
    bookkeeping (used for timing-only simulations of huge problems). *)

val alloc : t -> string -> rows:int -> cols:int -> copies:int -> unit
(** Raises {!Error.Sim_error} ([Overflow]) when the allocation exceeds
    remaining capacity. *)

val used_bytes : t -> int
val capacity_bytes : t -> int

val tile : t -> string -> copy:int -> float array
(** The backing array of one copy ([functional] mode only). *)

val tile_rows : t -> string -> int
val tile_cols : t -> string -> int
val copies : t -> string -> int

val note_write : t -> string -> copy:int -> start:float -> finish:float -> unit
(** Record a write interval (DMA-get or RMA arrival into the buffer) and
    check it against the last read. *)

val note_read : t -> string -> copy:int -> start:float -> finish:float -> unit
(** Record a read interval (kernel consuming the buffer, DMA-put draining
    it) and check it against the last write. *)

val races : t -> Error.conflict list
(** All races detected so far, in detection order (use
    {!Error.conflict_to_string} to render). *)

val corrupt : t -> string -> copy:int -> index:int -> delta:float -> unit
(** Fault injection: perturb one element of a copy's backing data
    ([functional] mode only; a no-op in timing-only mode or when [index]
    is out of range). *)
