type array_info = { dims : int array; data : float array }

type t = (string, array_info) Hashtbl.t

let create () = Hashtbl.create 7

let alloc_init t name ~dims ~f =
  if Hashtbl.mem t name then
    invalid_arg ("Mem.alloc: duplicate array " ^ name);
  let dims = Array.of_list dims in
  (match Array.length dims with
  | 2 | 3 -> ()
  | _ -> invalid_arg "Mem.alloc: only 2-D and 3-D arrays are supported");
  Array.iter (fun d -> if d <= 0 then invalid_arg "Mem.alloc: empty extent") dims;
  let total = Array.fold_left ( * ) 1 dims in
  let data = Array.init total (fun flat ->
      (* decompose the flat index back into coordinates, row-major *)
      let idx = Array.make (Array.length dims) 0 in
      let rem = ref flat in
      for d = Array.length dims - 1 downto 0 do
        idx.(d) <- !rem mod dims.(d);
        rem := !rem / dims.(d)
      done;
      f idx)
  in
  Hashtbl.add t name { dims; data }

let alloc t name ~dims = alloc_init t name ~dims ~f:(fun _ -> 0.0)

let find t name =
  match Hashtbl.find_opt t name with
  | Some a -> a
  | None -> invalid_arg ("Mem: unknown array " ^ name)

let data t name = (find t name).data
let dims t name = (find t name).dims

let row_len t name =
  let d = (find t name).dims in
  d.(Array.length d - 1)

let bounds name fmt =
  Printf.ksprintf
    (fun detail ->
      raise (Error.Sim_error (Error.Bounds { array_name = name; detail })))
    fmt

let offset t name ?batch ~row ~col () =
  let a = find t name in
  match (a.dims, batch) with
  | [| r; c |], None ->
      if row < 0 || row >= r || col < 0 || col >= c then
        bounds name "(%d, %d) outside %s[%d][%d]" row col name r c;
      (row * c) + col
  | [| b; r; c |], Some bi ->
      if bi < 0 || bi >= b || row < 0 || row >= r || col < 0 || col >= c then
        bounds name "(%d, %d, %d) outside %s[%d][%d][%d]" bi row col name b r c;
      (bi * r * c) + (row * c) + col
  | [| _; _ |], Some _ -> bounds name "batch index into 2-D array %s" name
  | [| _; _; _ |], None -> bounds name "missing batch index for 3-D array %s" name
  | _ -> assert false

let names t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
