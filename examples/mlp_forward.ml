(* A two-layer MLP forward pass, end to end.

   hidden = tanh(X * W1)        -- GEMM fused with a tanh epilogue
   logits = quant(hidden) * W2  -- GEMM fused with a quantization prologue

   Each layer is one generated kernel; the functional simulation chains the
   two layers through main memory exactly as an inference runtime would,
   and the result is compared against a plain OCaml forward pass. This is
   the "DL workloads" motivation of the paper's introduction made concrete.

   Run with:  dune exec examples/mlp_forward.exe *)

open Sw_core
open Sw_arch
open Sw_blas

(* Compile under a throwaway cacheless session; raises Sim_error on
   failure (the old compile_exn convenience). *)
let compile_exn ?options ?debug ?cache ?observer ~config spec =
  Compile.run_exn
    (Session.create ?options ?debug ?cache ~no_cache:true ?observer
       ~arch:config ())
    spec


let config = Config.tiny () (* functional run at reduced scale *)

(* one generated, simulated, verified layer: C = fn-fused GEMM *)
let run_layer ~fusion ~a ~b ~out_rows ~out_cols =
  let spec =
    Spec.make ~beta:0.0 ~fusion ~m:out_rows ~n:out_cols ~k:a.Matrix.cols ()
  in
  let compiled = compile_exn ~config spec in
  let padded = compiled.Compile.spec in
  let mem = Mem.create () in
  let install name (m : Matrix.t) rows cols =
    let p = Matrix.pad m ~rows ~cols in
    Mem.alloc_init mem name ~dims:[ rows; cols ] ~f:(fun idx ->
        Matrix.get p idx.(0) idx.(1))
  in
  install "A" a padded.Spec.m padded.Spec.k;
  install "B" b padded.Spec.k padded.Spec.n;
  install "C"
    (Matrix.create ~rows:out_rows ~cols:out_cols)
    padded.Spec.m padded.Spec.n;
  let r = Interp.run ~config ~functional:true ~mem compiled.Compile.program in
  assert (r.Interp.races = []);
  let data = Mem.data mem "C" in
  ( Matrix.init ~rows:out_rows ~cols:out_cols ~f:(fun i j ->
        data.((i * padded.Spec.n) + j)),
    r.Interp.seconds )

let () =
  print_endline "== two-layer MLP forward pass on the simulated cluster ==\n";
  let batch_tokens = 24 and d_in = 16 and d_hidden = 20 and d_out = 12 in
  let x = Matrix.random ~rows:batch_tokens ~cols:d_in ~seed:1 in
  let w1 = Matrix.random ~rows:d_in ~cols:d_hidden ~seed:2 in
  let w2 = Matrix.random ~rows:d_hidden ~cols:d_out ~seed:3 in

  (* layer 1: hidden = tanh(X W1), fused epilogue *)
  let hidden, t1 =
    run_layer ~fusion:(Spec.Epilogue "tanh") ~a:x ~b:w1 ~out_rows:batch_tokens
      ~out_cols:d_hidden
  in
  (* layer 2: logits = quant(hidden) W2, fused prologue *)
  let logits, t2 =
    run_layer ~fusion:(Spec.Prologue "quant") ~a:hidden ~b:w2
      ~out_rows:batch_tokens ~out_cols:d_out
  in
  Printf.printf "layer 1 (tanh epilogue):  %.1f us simulated\n" (1e6 *. t1);
  Printf.printf "layer 2 (quant prologue): %.1f us simulated\n" (1e6 *. t2);

  (* reference forward pass in plain OCaml *)
  let href = Matrix.create ~rows:batch_tokens ~cols:d_hidden in
  Dgemm.fused_epilogue ~fn:"tanh" ~alpha:1.0 ~beta:0.0 ~a:x ~b:w1 ~c:href;
  let lref = Matrix.create ~rows:batch_tokens ~cols:d_out in
  Dgemm.fused_prologue ~fn:"quant" ~alpha:1.0 ~beta:0.0 ~a:href ~b:w2 ~c:lref;

  let diff = Matrix.max_abs_diff lref logits in
  Printf.printf "\nmax |difference| vs reference forward pass: %.3e\n" diff;
  if diff > 1e-9 then failwith "MLP forward pass mismatch"
  else print_endline "MLP forward pass: PASSED";

  (* headline: what the same two layers cost at production scale *)
  let big = Config.sw26010pro in
  print_endline "\nat production scale (4096 tokens, 8192 -> 8192 -> 8192):";
  List.iter
    (fun (name, fusion) ->
      let spec = Spec.make ~beta:0.0 ~fusion ~m:4096 ~n:8192 ~k:8192 () in
      let ours =
        (Runner.measure (compile_exn ~config:big spec)).Runner.gflops
      in
      let baseline = (Sw_xmath.Xmath.measure big spec).Sw_xmath.Xmath.gflops in
      Printf.printf "  %-24s %8.2f Gflops fused vs %8.2f library+MPE (%.2fx)\n"
        name ours baseline (ours /. baseline))
    [
      ("tanh-epilogue layer", Spec.Epilogue "tanh");
      ("quant-prologue layer", Spec.Prologue "quant");
    ]
