(* Multi-cluster GEMM (§2.1 / §10 future work): scaling one GEMM over the
   six core groups of an SW26010Pro processor.

   The compiler's cluster-level kernel is composed at the processor level
   by a 2-D block decomposition of the output matrix: every cluster
   receives its operand panels over the network-on-chip and runs the
   generated kernel independently — "independent smaller ones until each
   piece can be handled by a cluster".

   Run with:  dune exec examples/multi_cluster.exe *)

open Sw_core
open Sw_arch
open Sw_multi

let config = Config.sw26010pro

let () =
  print_endline "== multi-cluster GEMM scaling ==\n";
  let spec = Spec.make ~m:16384 ~n:16384 ~k:8192 () in
  Printf.printf "problem: %s\n\n" (Spec.to_string spec);
  Printf.printf "%-10s %-8s %14s %16s %14s %12s\n" "clusters" "grid"
    "time (ms)" "Tflops (total)" "NoC (ms)" "efficiency";
  List.iter
    (fun clusters ->
      match Plan.make spec ~clusters with
      | Error e -> failwith e
      | Ok plan ->
          let s = Multi_sim.measure (Session.create ~no_cache:true ~arch:config ()) plan in
          Printf.printf "%-10d %-8s %14.2f %16.3f %14.2f %11.1f%%\n" clusters
            (Printf.sprintf "%dx%d" plan.Plan.grid_rows plan.Plan.grid_cols)
            (1000.0 *. s.Multi_sim.seconds)
            (s.Multi_sim.gflops /. 1000.0)
            (1000.0 *. s.Multi_sim.distribution_s)
            (100.0 *. s.Multi_sim.parallel_efficiency))
    [ 1; 2; 3; 4; 6 ];

  print_endline
    "\nthe reduction dimension is never split, so no inter-cluster\n\
     reduction is needed: each cluster's result block is final.\n";

  (* functional proof at reduced scale: 6 simulated clusters, reassembled *)
  let tiny = Config.tiny () in
  let small = Spec.make ~m:24 ~n:16 ~k:12 () in
  match Plan.make small ~clusters:6 with
  | Error e -> failwith e
  | Ok plan -> (
      Printf.printf "plan: %s\n" (Plan.to_string plan);
      match Multi_sim.verify (Session.create ~no_cache:true ~arch:tiny ()) plan with
      | Ok () ->
          print_endline "functional check (6 clusters, reassembled C): PASSED"
      | Error e -> failwith (Error.to_string e))
