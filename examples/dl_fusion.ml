(* DL fusion patterns (§7.3, §8.4): a quantized linear layer.

   The motivating DL workload of the paper: a GEMM whose input activations
   are quantized (element-wise prologue on A) and whose output goes through
   an activation function (element-wise epilogue on C). The compiler fuses
   both patterns into the generated CPE code, while the library baseline
   must run them as separate MPE passes around an xMath call.

   Run with:  dune exec examples/dl_fusion.exe *)

open Sw_core
open Sw_arch

(* Compile under a throwaway cacheless session; raises Sim_error on
   failure (the old compile_exn convenience). *)
let compile_exn ?options ?debug ?cache ?observer ~config spec =
  Compile.run_exn
    (Session.create ?options ?debug ?cache ~no_cache:true ?observer
       ~arch:config ())
    spec


let config = Config.sw26010pro
let peak = Config.peak_gflops config

let layer_shapes =
  (* (batch tokens x features) x (features x hidden) projections *)
  [ (2048, 2048, 5120); (4096, 4096, 10240); (8192, 8192, 8192) ]

let report name spec =
  let compiled = compile_exn ~config spec in
  let ours = (Runner.measure compiled).Runner.gflops in
  let lib = (Sw_xmath.Xmath.measure config spec).Sw_xmath.Xmath.gflops in
  Printf.printf "  %-28s ours %8.2f Gflops (%4.1f%%)  baseline %8.2f Gflops  -> %.2fx\n"
    name ours
    (100.0 *. ours /. peak)
    lib (ours /. lib)

let () =
  print_endline "== DL fusion patterns (paper §8.4) ==";
  print_endline
    "baseline = xMath GEMM + element-wise pass executed on the MPE\n";
  List.iter
    (fun (m, n, k) ->
      Printf.printf "layer %dx%dx%d:\n" m n k;
      report "plain GEMM" (Spec.make ~m ~n ~k ());
      report "quantization prologue" (Spec.make ~fusion:(Spec.Prologue "quant") ~m ~n ~k ());
      report "tanh epilogue" (Spec.make ~fusion:(Spec.Epilogue "tanh") ~m ~n ~k ());
      report "relu epilogue" (Spec.make ~fusion:(Spec.Epilogue "relu") ~m ~n ~k ());
      print_newline ())
    layer_shapes;

  (* functional sanity at reduced scale: fused code must match the fused
     reference bit-for-bit up to floating-point tolerance *)
  let tiny = Config.tiny () in
  List.iter
    (fun fusion ->
      let spec = Spec.make ~fusion ~m:16 ~n:16 ~k:16 () in
      match Runner.verify (compile_exn ~config:tiny spec) with
      | Ok () ->
          Printf.printf "functional check (%s): PASSED\n" (Spec.to_string spec)
      | Error e -> failwith (Runner.error_to_string e))
    [ Spec.Prologue "quant"; Spec.Epilogue "tanh" ];

  print_endline
    "\nnote: prologue fusion pays the recomputation of the quantization\n\
     along the j dimension (§8.4) — visible as the lower Gflops numbers\n\
     for wide layers; epilogue fusion is recomputation-free."
