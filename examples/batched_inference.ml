(* Batched GEMM (§3, §8.3): multi-head attention projections.

   A transformer inference step multiplies many small/medium matrices with
   identical shapes — the batched GEMM pattern. The compiler isolates the
   batch dimension (Fig. 3) and iterates it inside each CPE, so the mesh is
   spawned once; the xMath baseline has no batched interface and pays one
   mesh launch (plus library dispatch) per batch element.

   Run with:  dune exec examples/batched_inference.exe *)

open Sw_core
open Sw_arch

(* Compile under a throwaway cacheless session; raises Sim_error on
   failure (the old compile_exn convenience). *)
let compile_exn ?options ?debug ?cache ?observer ~config spec =
  Compile.run_exn
    (Session.create ?options ?debug ?cache ~no_cache:true ?observer
       ~arch:config ())
    spec


let config = Config.sw26010pro

let () =
  print_endline "== batched GEMM: attention-style workloads (paper §8.3) ==\n";
  Printf.printf "%-34s %14s %14s %9s\n" "workload" "ours (Gflops)" "xMath (Gflops)" "speedup";
  List.iter
    (fun (batch, m, n, k) ->
      let spec = Spec.make ~batch ~m ~n ~k () in
      let compiled = compile_exn ~config spec in
      let ours = (Runner.measure compiled).Runner.gflops in
      let lib = (Sw_xmath.Xmath.measure config spec).Sw_xmath.Xmath.gflops in
      Printf.printf "%-34s %14.2f %14.2f %8.2fx\n"
        (Printf.sprintf "batch=%-2d %dx%dx%d" batch m n k)
        ours lib (ours /. lib))
    [
      (* heads x (sequence x head_dim x sequence)-style products; K mostly
         not a power of two, as in §8.3 *)
      (16, 2048, 2048, 3072);
      (8, 2048, 2048, 5120);
      (4, 4096, 4096, 6144);
      (4, 4096, 4096, 7680);
      (2, 4096, 4096, 16384);
      (2, 8192, 8192, 10240);
    ];

  (* the crossover the paper reports: for one large power-of-two-K shape
     the library stays ahead even with the per-batch startups *)
  print_endline
    "\nthe 4096x4096x16384 row shows the paper's observation: with K = 16384\n\
     the library's hand-tuned kernel amortizes its per-batch startups and\n\
     stays slightly ahead; everywhere else the single mesh launch and the\n\
     stable generated kernel win.\n";

  (* functional check of a batched run at reduced scale *)
  let tiny = Config.tiny () in
  match
    Runner.verify
      (compile_exn ~config:tiny (Spec.make ~batch:3 ~m:16 ~n:8 ~k:12 ()))
  with
  | Ok () -> print_endline "functional check (batch=3): PASSED"
  | Error e -> failwith (Runner.error_to_string e)
