(* Quickstart: the paper's promise end to end.

   Write the naive 3-loop GEMM in C, let the compiler do everything else:
   polyhedral analysis, compute decomposition, automatic DMA/RMA insertion,
   two-level latency hiding, micro-kernel integration. The generated code
   is then (1) executed functionally on the simulated cluster and checked
   against a reference DGEMM, and (2) timed on the SW26010Pro machine
   model.

   Run with:  dune exec examples/quickstart.exe *)

open Sw_core
open Sw_arch

(* Compile under a throwaway cacheless session; raises Sim_error on
   failure (the old compile_exn convenience). *)
let compile_exn ?options ?debug ?cache ?observer ~config spec =
  Compile.run_exn
    (Session.create ?options ?debug ?cache ~no_cache:true ?observer
       ~arch:config ())
    spec


let source =
  {|
void gemm(double A[2048][2048], double B[2048][2048], double C[2048][2048]) {
  for (int i = 0; i < 2048; i++)
    for (int j = 0; j < 2048; j++)
      for (int k = 0; k < 2048; k++)
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
}
|}

let () =
  print_endline "== swgemm quickstart ==";
  print_endline "input C code:";
  print_string source;

  (* 1. front-end: recognize the GEMM pattern *)
  let spec =
    match Sw_frontend.Extract.spec_of_source source with
    | Ok s -> s
    | Error e -> failwith e
  in
  Printf.printf "\nrecognized: %s\n" (Spec.to_string spec);

  (* 2. compile for the SW26010Pro model, timing the generation (§8.5) *)
  let config = Config.sw26010pro in
  let compiled, gen_s =
    Compile.generation_seconds (fun () -> compile_exn ~config spec)
  in
  Printf.printf "generated athread code in %.1f ms (vs months by hand, §8.5)\n"
    (1000.0 *. gen_s);
  Printf.printf "decomposition: %s\n" (Tile_model.to_string compiled.Compile.tiles);
  Printf.printf "SPM per CPE: %d bytes of %d (the nine buffers of §6.3)\n\n"
    (Sw_ast.Ast.spm_bytes compiled.Compile.program)
    config.Config.spm_bytes;

  (* 3. functional validation: the same problem at reduced scale runs on a
     2x2-mesh cluster simulation with real data movement *)
  let tiny = Config.tiny () in
  let small = compile_exn ~config:tiny (Spec.make ~m:16 ~n:16 ~k:16 ()) in
  (match Runner.verify small with
  | Ok () -> print_endline "functional check vs reference DGEMM: PASSED"
  | Error e -> failwith ("functional check FAILED: " ^ Runner.error_to_string e));

  (* 4. performance on the machine model, vs the xMath baseline *)
  let p = Runner.measure compiled in
  let x = Sw_xmath.Xmath.measure config compiled.Compile.spec in
  Printf.printf "\nsimulated performance at 2048^3:\n";
  Printf.printf "  generated code: %8.2f Gflops (%.1f%% of peak)\n"
    p.Runner.gflops
    (100.0 *. p.Runner.gflops /. Config.peak_gflops config);
  Printf.printf "  xMath library:  %8.2f Gflops (%.1f%% of peak)\n"
    x.Sw_xmath.Xmath.gflops
    (100.0 *. x.Sw_xmath.Xmath.gflops /. Config.peak_gflops config);

  (* 5. show a slice of the generated CPE code *)
  print_endline "\nfirst lines of the generated CPE file:";
  let cpe = Cemit.cpe_file compiled in
  String.split_on_char '\n' cpe
  |> List.filteri (fun i _ -> i < 34)
  |> List.iter print_endline;
  print_endline "  ..."
