(* Optimization breakdown (§8.1): what each transformation contributes.

   Compiles the same GEMM four times with the generator's optimizations
   enabled one by one — exactly the ablation of Fig. 13 — and shows the
   schedule tree growing from plain tiling to the fully pipelined form of
   Fig. 11.

   Run with:  dune exec examples/breakdown.exe *)

open Sw_core
open Sw_arch

(* Compile under a throwaway cacheless session; raises Sim_error on
   failure (the old compile_exn convenience). *)
let compile_exn ?options ?debug ?cache ?observer ~config spec =
  Compile.run_exn
    (Session.create ?options ?debug ?cache ~no_cache:true ?observer
       ~arch:config ())
    spec


let config = Config.sw26010pro
let spec = Spec.make ~m:4096 ~n:4096 ~k:4096 ()

let () =
  Printf.printf "== performance breakdown at %s (peak %.2f Gflops) ==\n\n"
    (Spec.to_string spec) (Config.peak_gflops config);
  let previous = ref None in
  List.iter
    (fun (name, options) ->
      let compiled = compile_exn ~options ~config spec in
      let g = (Runner.measure compiled).Runner.gflops in
      let speedup =
        match !previous with
        | Some p -> Printf.sprintf "  (%.2fx over previous)" (g /. p)
        | None -> ""
      in
      previous := Some g;
      Printf.printf "%-18s %9.2f Gflops%s\n" name g speedup)
    Options.breakdown;

  let x = Sw_xmath.Xmath.measure config spec in
  Printf.printf "%-18s %9.2f Gflops  (library baseline)\n\n" "xMath"
    x.Sw_xmath.Xmath.gflops;

  (* show how the schedule tree evolves: plain DMA vs the final pipelined
     tree with peeled filters and double-buffer subscripts *)
  let dump title options =
    Printf.printf "---- schedule tree: %s ----\n" title;
    let compiled = compile_exn ~options ~config (Spec.make ~m:512 ~n:512 ~k:512 ()) in
    print_string (Sw_tree.Tree.to_string compiled.Compile.tree);
    print_newline ()
  in
  dump "automatic DMA only" Options.baseline;
  dump "full pipeline (Fig. 11)" Options.all_on;

  (* what latency hiding looks like: one CPE's activity lane, with (K) the
     micro kernel, (D) DMA, (R) RMA, (w) blocked on a reply, (b) barrier *)
  let lane options =
    let compiled =
      compile_exn ~options ~config (Spec.make ~m:512 ~n:512 ~k:2048 ())
    in
    let trace, perf = Runner.traced compiled in
    let mesh = (config.Config.mesh_rows, config.Config.mesh_cols) in
    Printf.printf "%-18s |%s| %s\n" (Options.name options)
      (Sw_arch.Trace.gantt trace ~rid:3 ~cid:5 ~width:72)
      (Sw_arch.Trace.summary trace ~mesh);
    ignore perf
  in
  print_endline "---- CPE(3,5) activity at 512x512x2048 ----";
  lane Options.with_rma;
  lane Options.all_on;
  print_endline
    "\n(K kernel, D dma, R rma, w reply-wait, b barrier; the pipelined lane\n\
     is dominated by K where the unpipelined one alternates K with waits)"
