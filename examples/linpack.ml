(* Linpack, the paper's opening motivation: "the Linpack benchmark used to
   rank supercomputers relies heavily on the efficient implementation of
   GEMM" (§1).

   Part 1 (functional): a blocked LU factorization whose trailing updates
   run through the *generated, simulated* GEMM kernel — the solver's
   residual proves the generated code correct inside a real consumer.

   Part 2 (performance): an HPL-style estimate — LU is (2/3)n^3 flops
   dominated by trailing-update GEMMs, so the achievable Linpack rate is
   essentially the GEMM rate the generator reaches.

   Run with:  dune exec examples/linpack.exe *)

open Sw_core
open Sw_arch
open Sw_blas

(* Compile under a throwaway cacheless session; raises Sim_error on
   failure (the old compile_exn convenience). *)
let compile_exn ?options ?debug ?cache ?observer ~config spec =
  Compile.run_exn
    (Session.create ?options ?debug ?cache ~no_cache:true ?observer
       ~arch:config ())
    spec


let tiny = Config.tiny ()

(* C := C - A x B through the compiled kernel on the simulated cluster. *)
let simulated_gemm_update ~(a : Matrix.t) ~(b : Matrix.t) ~(c : Matrix.t) =
  let spec =
    Spec.make ~alpha:(-1.0) ~beta:1.0 ~m:c.Matrix.rows ~n:c.Matrix.cols
      ~k:a.Matrix.cols ()
  in
  let compiled = compile_exn ~config:tiny spec in
  let padded = compiled.Compile.spec in
  let mem = Mem.create () in
  let install name (m : Matrix.t) rows cols =
    let p = Matrix.pad m ~rows ~cols in
    Mem.alloc_init mem name ~dims:[ rows; cols ] ~f:(fun idx ->
        Matrix.get p idx.(0) idx.(1))
  in
  install "A" a padded.Spec.m padded.Spec.k;
  install "B" b padded.Spec.k padded.Spec.n;
  install "C" c padded.Spec.m padded.Spec.n;
  let r = Interp.run ~config:tiny ~functional:true ~mem compiled.Compile.program in
  assert (r.Interp.races = []);
  let data = Mem.data mem "C" in
  for i = 0 to c.Matrix.rows - 1 do
    for j = 0 to c.Matrix.cols - 1 do
      Matrix.set c i j data.((i * padded.Spec.n) + j)
    done
  done

let () =
  print_endline "== Linpack driven by the generated GEMM ==\n";

  (* Part 1: solve a 64x64 system; every trailing update is a generated
     kernel executed with real data movement on the simulated cluster. *)
  let n = 64 in
  let a = Lu.diagonally_dominant ~n ~seed:2026 in
  let x_true = Array.init n (fun i -> sin (float_of_int i)) in
  let rhs =
    Array.init n (fun i ->
        let s = ref 0.0 in
        for j = 0 to n - 1 do
          s := !s +. (Matrix.get a i j *. x_true.(j))
        done;
        !s)
  in
  let lu = Matrix.copy a in
  Lu.blocked_factor ~bs:16 ~gemm:simulated_gemm_update lu;
  let x = Lu.solve ~lu ~b:rhs in
  let res = Lu.residual ~a ~x ~b:rhs in
  Printf.printf "blocked LU (n = %d, bs = 16) with simulated-GEMM updates\n" n;
  Printf.printf "  max |Ax - b| = %.3e\n" res;
  if res > 1e-8 then failwith "Linpack residual too large"
  else print_endline "  solver: PASSED\n";

  (* Part 2: HPL-style projection on the real machine model. *)
  let config = Config.sw26010pro in
  print_endline "HPL-style projection (one cluster):";
  Printf.printf "  %-10s %16s %18s\n" "n" "GEMM (Gflops)" "est. HPL time (s)";
  List.iter
    (fun nn ->
      let spec = Spec.make ~m:nn ~n:nn ~k:nn () in
      let g = (Runner.measure (compile_exn ~config spec)).Runner.gflops in
      let hpl_flops = 2.0 /. 3.0 *. (float_of_int nn ** 3.0) in
      Printf.printf "  %-10d %16.2f %18.2f\n" nn g (hpl_flops /. (g *. 1e9)))
    [ 8192; 15360; 32768 ];
  print_endline
    "\n(the factorization's panel work is O(n^2 b) against O(n^3) of GEMM,\n\
     so sustained Linpack rate ~ the generated kernel's GEMM rate)"
