(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8) on the simulated SW26010Pro, plus ablations and Bechamel
   micro-benchmarks of the generator itself.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe fig13      -- one experiment
     (fig13 | fig14 | fig15 | fig16 | cost | ablation | service | micro)

   Absolute Gflops come from the calibrated machine model (DESIGN.md §4);
   the claims under reproduction are the *relative* results: breakdown
   factors, who wins where, crossover locations. EXPERIMENTS.md records
   paper-vs-measured for every series. *)

open Sw_core
open Sw_arch
open Sw_xmath

let config = Config.sw26010pro
let peak = Config.peak_gflops config

(* Machine-readable sink: alongside its text and CSVs, every series lands
   in results/BENCH_<series>.json — the tables, a generated-kernel Gflops
   summary, wall-clock, and (under --metrics) the metrics recorded while
   it ran. Written silently so stdout stays byte-identical. *)
let metrics_registry = ref None
let json_tables = ref []
let gflops_log = ref []

(* The measurement fan-out of each figure runs over --jobs host domains;
   everything that mutates shared state (printing, CSV/JSON sinks, the
   Gflops log) stays on the main domain, after the pool barrier, in shape
   order — stdout and results/ are byte-identical for every --jobs. *)
let pool = ref None

let pmap f xs =
  match !pool with Some p -> Sw_host.Pool.map p f xs | None -> List.map f xs

let session ?(options = Options.all_on) () = Session.create ~no_cache:true ~options ~arch:config ()

(* Pure measurement (safe inside pool tasks); [ours] adds the logging. *)
let measure_ours ?options spec =
  (Runner.measure (Compile.run_exn (session ?options ()) spec)).Runner.gflops

let log_gflops g = gflops_log := g :: !gflops_log

let ours ?options spec =
  let g = measure_ours ?options spec in
  log_gflops g;
  g

let lib spec = (Xmath.measure config spec).Xmath.gflops

let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let header title =
  Printf.printf "\n==================== %s ====================\n" title

(* CSV sink: every figure also lands in results/<name>.csv for re-plotting. *)
let csv name columns rows =
  (try Unix.mkdir "results" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat "results" (name ^ ".csv")) in
  output_string oc (String.concat "," columns);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  json_tables :=
    ( name,
      Sw_obs.Json.Obj
        [
          ("columns", List (List.map (fun c -> Sw_obs.Json.String c) columns));
          ( "rows",
            List
              (List.map
                 (fun row ->
                   Sw_obs.Json.List
                     (List.map (fun x -> Sw_obs.Json.String x) row))
                 rows) );
        ] )
    :: !json_tables;
  Printf.printf "[wrote results/%s.csv]\n" name

(* ------------------------------------------------------------------ *)
(* Fig. 13: square GEMM breakdown                                       *)
(* ------------------------------------------------------------------ *)

let fig13_shapes =
  [ 512; 1024; 1536; 2048; 2560; 3072; 4096; 5120; 6144; 7680; 10240; 15360 ]

let fig13 () =
  header "Fig. 13: square GEMM, performance breakdown vs xMath";
  Printf.printf "%-8s" "shape";
  List.iter (fun (n, _) -> Printf.printf "%17s" n) Options.breakdown;
  Printf.printf "%17s\n" "xMath";
  let cols = Array.make (List.length Options.breakdown + 1) [] in
  let measured =
    pmap
      (fun s ->
        let spec = Spec.make ~m:s ~n:s ~k:s () in
        ( List.map (fun (_, options) -> measure_ours ~options spec)
            Options.breakdown,
          lib spec ))
      fig13_shapes
  in
  List.iter2
    (fun s (gs, x) ->
      Printf.printf "%-8d" s;
      List.iteri
        (fun i g ->
          log_gflops g;
          cols.(i) <- g :: cols.(i);
          Printf.printf "%17.2f" g)
        gs;
      cols.(List.length Options.breakdown) <- x :: cols.(List.length Options.breakdown);
      Printf.printf "%17.2f\n%!" x)
    fig13_shapes measured;
  Printf.printf "%-8s" "mean";
  Array.iter (fun c -> Printf.printf "%17.2f" (mean c)) cols;
  print_newline ();
  csv "fig13"
    ("shape" :: List.map fst Options.breakdown @ [ "xmath" ])
    (List.mapi
       (fun i s ->
         string_of_int s
         :: List.map
              (fun c ->
                Printf.sprintf "%.2f" (List.nth (List.rev c) i))
              (Array.to_list cols))
       fig13_shapes);
  let v(i) = mean cols.(i) in
  Printf.printf
    "factors: asm %.2fx, rma %.2fx, hiding %.2fx (paper: 2.83x, 4.38x, 1.76x)\n"
    (v 1 /. v 0) (v 2 /. v 1) (v 3 /. v 2);
  let best = List.hd cols.(3) (* 15360^3, last pushed *) in
  Printf.printf "largest shape: %.2f Gflops = %.2f%% of peak (paper: 90.14%%)\n"
    best (100.0 *. best /. peak);
  Printf.printf "ours vs xMath on squares: %+.2f%% (paper: +9.62%%)\n"
    (100.0 *. ((v 3 /. v 4) -. 1.0))

(* ------------------------------------------------------------------ *)
(* Fig. 14: non-square GEMM vs xMath                                    *)
(* ------------------------------------------------------------------ *)

let fig14_shapes =
  let mns =
    [
      (2048, 4096); (4096, 4096); (4096, 8192); (8192, 8192); (4096, 16384);
      (8192, 16384); (2048, 8192); (8192, 4096); (16384, 4096);
    ]
  in
  (* one non-power-of-two K out of four: exactly nine degraded shapes out
     of 36, as §8.2 reports *)
  let ks = [ 4096; 8192; 15360; 16384 ] in
  List.concat_map (fun (m, n) -> List.map (fun k -> (m, n, k)) ks) mns

let fig14 () =
  header "Fig. 14: non-square GEMM vs xMath (36 shapes)";
  Printf.printf "%-22s %12s %12s %9s\n" "shape" "ours" "xMath" "ratio";
  let ours_all = ref [] and lib_all = ref [] in
  let rows = ref [] in
  let worst_lib = ref (1.0, (0, 0, 0)) in
  let best_ours = ref (0.0, (0, 0, 0)) and best_lib = ref (0.0, (0, 0, 0)) in
  let measured =
    pmap
      (fun (m, n, k) ->
        let spec = Spec.make ~m ~n ~k () in
        (measure_ours spec, lib spec))
      fig14_shapes
  in
  List.iter2
    (fun (m, n, k) (o, x) ->
      log_gflops o;
      ours_all := o :: !ours_all;
      lib_all := x :: !lib_all;
      if x /. peak < fst !worst_lib then worst_lib := (x /. peak, (m, n, k));
      if o > fst !best_ours then best_ours := (o, (m, n, k));
      if x > fst !best_lib then best_lib := (x, (m, n, k));
      rows :=
        [ string_of_int m; string_of_int n; string_of_int k;
          Printf.sprintf "%.2f" o; Printf.sprintf "%.2f" x ]
        :: !rows;
      Printf.printf "%-22s %12.2f %12.2f %8.2fx\n%!"
        (Printf.sprintf "%dx%dx%d" m n k)
        o x (o /. x))
    fig14_shapes measured;
  csv "fig14" [ "m"; "n"; "k"; "ours"; "xmath" ] (List.rev !rows);
  Printf.printf "means: ours %.2f, xMath %.2f -> %+.2f%% (paper: 1911.22 vs \
                 1846.96, +9.25%%)\n"
    (mean !ours_all) (mean !lib_all)
    (100.0 *. ((mean !ours_all /. mean !lib_all) -. 1.0));
  let frac, (m, n, k) = !worst_lib in
  Printf.printf "xMath worst: %.2f%% of peak at %dx%dx%d (paper: 42.25%% at \
                 8192x8192x15360)\n"
    (100.0 *. frac) m n k;
  let g, (m, n, k) = !best_ours in
  Printf.printf "ours best: %.2f%% of peak at %dx%dx%d (paper: 90.03%%)\n"
    (100.0 *. g /. peak) m n k;
  let g, (m, n, k) = !best_lib in
  Printf.printf "xMath best: %.2f%% of peak at %dx%dx%d (paper: 93.53%% at \
                 4096x16384x16384)\n"
    (100.0 *. g /. peak) m n k

(* ------------------------------------------------------------------ *)
(* Fig. 15: batched GEMM                                                *)
(* ------------------------------------------------------------------ *)

let fig15_shapes =
  (* six shapes, K a power of two or not, as §8.3 describes *)
  [
    (512, 512, 3072); (2048, 2048, 5120); (4096, 4096, 6144);
    (4096, 4096, 12288); (4096, 4096, 16384); (8192, 8192, 10240);
  ]

let fig15 () =
  header "Fig. 15: batched GEMM vs per-call xMath";
  Printf.printf "%-30s %12s %12s %9s\n" "workload" "ours" "xMath" "ratio";
  let ours_all = ref [] and lib_all = ref [] and ratios = ref [] in
  let rows = ref [] in
  let workloads =
    List.concat_map
      (fun batch -> List.map (fun (m, n, k) -> (batch, m, n, k)) fig15_shapes)
      [ 2; 4; 8; 16 ]
  in
  let measured =
    pmap
      (fun (batch, m, n, k) ->
        let spec = Spec.make ~batch ~m ~n ~k () in
        (measure_ours spec, lib spec))
      workloads
  in
  List.iter2
    (fun (batch, m, n, k) (o, x) ->
      log_gflops o;
      ours_all := o :: !ours_all;
      lib_all := x :: !lib_all;
      ratios := (o /. x) :: !ratios;
      rows :=
        [ string_of_int batch; string_of_int m; string_of_int n;
          string_of_int k; Printf.sprintf "%.2f" o; Printf.sprintf "%.2f" x ]
        :: !rows;
      Printf.printf "%-30s %12.2f %12.2f %8.2fx\n%!"
        (Printf.sprintf "batch=%-2d %dx%dx%d" batch m n k)
        o x (o /. x))
    workloads measured;
  csv "fig15" [ "batch"; "m"; "n"; "k"; "ours"; "xmath" ] (List.rev !rows);
  Printf.printf
    "means: ours %.2f, xMath %.2f; mean per-shape speedup %.2fx (paper: \
     1949.92 vs 1603.26, 1.30x)\n"
    (mean !ours_all) (mean !lib_all) (mean !ratios)

(* ------------------------------------------------------------------ *)
(* Fig. 16: fusion patterns                                             *)
(* ------------------------------------------------------------------ *)

let fig16_shapes =
  [
    (2048, 2048, 2048); (3072, 3072, 3072); (4096, 4096, 4096);
    (6144, 6144, 6144); (8192, 8192, 8192); (10752, 10752, 10752);
    (8192, 16384, 8192); (4096, 8192, 8192);
  ]

let fig16_one ~title ~fusion ~paper =
  Printf.printf "\n-- fusion with %s --\n" title;
  Printf.printf "%-22s %12s %12s %9s\n" "shape" "fused" "baseline" "ratio";
  let f_all = ref [] and b_all = ref [] in
  let rows = ref [] in
  let measured =
    pmap
      (fun (m, n, k) ->
        let spec = Spec.make ~fusion ~m ~n ~k () in
        (measure_ours spec, lib spec))
      fig16_shapes
  in
  List.iter2
    (fun (m, n, k) (o, x) ->
      log_gflops o;
      f_all := o :: !f_all;
      b_all := x :: !b_all;
      rows :=
        [ string_of_int m; string_of_int n; string_of_int k;
          Printf.sprintf "%.2f" o; Printf.sprintf "%.2f" x ]
        :: !rows;
      Printf.printf "%-22s %12.2f %12.2f %8.2fx\n%!"
        (Printf.sprintf "%dx%dx%d" m n k)
        o x (o /. x))
    fig16_shapes measured;
  csv
    (match fusion with
    | Spec.Prologue _ -> "fig16_prologue"
    | Spec.Epilogue _ -> "fig16_epilogue"
    | Spec.No_fusion -> "fig16_plain")
    [ "m"; "n"; "k"; "fused"; "baseline" ]
    (List.rev !rows);
  Printf.printf "means: fused %.2f vs baseline %.2f -> %.2fx (paper: %s)\n"
    (mean !f_all) (mean !b_all)
    (mean !f_all /. mean !b_all)
    paper;
  (mean !f_all, mean !b_all)

let fig16 () =
  header "Fig. 16: fusion patterns vs xMath + MPE element-wise pass";
  let pf, pb =
    fig16_one ~title:"prologue (quantization of A)"
      ~fusion:(Spec.Prologue "quant") ~paper:"1709.81 vs 1436.46, 1.26x"
  in
  let ef, eb =
    fig16_one ~title:"epilogue (tanh activation of C)"
      ~fusion:(Spec.Epilogue "tanh") ~paper:"1818.24 vs 919.56, 2.11x"
  in
  Printf.printf
    "\noverall fusion speedup: %.2fx (paper: 1.67x average of both patterns)\n"
    (((pf /. pb) +. (ef /. eb)) /. 2.0)

(* ------------------------------------------------------------------ *)
(* §8.5: engineering cost                                               *)
(* ------------------------------------------------------------------ *)

let cost () =
  header "engineering cost (§8.5): seconds to generate each kernel";
  let scenarios =
    [
      ("plain 4096^3", Spec.make ~m:4096 ~n:4096 ~k:4096 (), Options.all_on);
      ("plain 15360^3", Spec.make ~m:15360 ~n:15360 ~k:15360 (), Options.all_on);
      ("batched 8x2048^3", Spec.make ~batch:8 ~m:2048 ~n:2048 ~k:2048 (), Options.all_on);
      ( "fused prologue",
        Spec.make ~fusion:(Spec.Prologue "quant") ~m:4096 ~n:4096 ~k:4096 (),
        Options.all_on );
      ( "fused epilogue",
        Spec.make ~fusion:(Spec.Epilogue "tanh") ~m:4096 ~n:4096 ~k:4096 (),
        Options.all_on );
      ("no-asm variant", Spec.make ~m:4096 ~n:4096 ~k:4096 (), Options.baseline);
    ]
  in
  List.iter
    (fun (name, spec, options) ->
      let compiled, secs =
        Compile.generation_seconds (fun () ->
            Compile.run_exn (session ~options ()) spec)
      in
      Printf.printf
        "  %-18s %8.2f ms (schedule tree + polyhedral bounds + AST + %d C lines)\n"
        name (1000.0 *. secs)
        (String.length (Cemit.cpe_file compiled)
        |> fun n -> n / 40 (* rough line estimate *)))
    scenarios;
  Printf.printf
    "paper: seconds per kernel vs months of manual work for SW26010 [11, 12]\n";

  header "plan cache: cold pipeline vs cache hit";
  let cache = Plan_cache.create () in
  let hit_iters = 100 in
  let rows = ref [] in
  List.iter
    (fun (name, spec, options) ->
      let cached = Session.create ~options ~cache ~arch:config () in
      let _, cold =
        Compile.generation_seconds (fun () -> Compile.run_exn cached spec)
      in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to hit_iters do
        ignore (Compile.run_exn cached spec)
      done;
      let hit = (Unix.gettimeofday () -. t0) /. float_of_int hit_iters in
      rows :=
        [ name; Printf.sprintf "%.6f" cold; Printf.sprintf "%.9f" hit;
          Printf.sprintf "%.1f" (cold /. hit) ]
        :: !rows;
      Printf.printf "  %-18s cold %8.2f ms, hit %8.2f us -> %8.1fx\n" name
        (1000.0 *. cold) (1e6 *. hit) (cold /. hit))
    scenarios;
  let st = Plan_cache.stats cache in
  Printf.printf "  cache: %d hits, %d misses, %d entries\n"
    st.Plan_cache.hits st.Plan_cache.misses st.Plan_cache.entries;
  csv "cost_cache" [ "scenario"; "cold_s"; "hit_s"; "speedup" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                             *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "ablation: micro-kernel shape search (§3.1 analytic model vs tuning)";
  let spec = Spec.make ~m:4096 ~n:4096 ~k:4096 () in
  let results = Tuner.search ~config spec in
  print_string (Tuner.report results);
  let (bm, bn, bk), bg = Tuner.best results in
  Printf.printf
    "  best: %dx%dx%d at %.2f Gflops -- the analytic choice (the vendor \
     kernel's shape configuration), confirming that no tuning loop is \
     needed for GEMM\n"
    bm bn bk bg;

  header "ablation: batch dimension placement (§3, §8.3)";
  let batch = 8 and m = 2048 and n = 2048 and k = 5120 in
  let spec = Spec.make ~batch ~m ~n ~k () in
  let inside = (Runner.measure (Compile.run_exn (session ()) spec)).Runner.gflops in
  (* per-batch mesh relaunch: batch independent launches of the unbatched
     kernel (what a library without a batched interface must do) *)
  let single =
    Runner.measure (Compile.run_exn (session ()) (Spec.make ~m ~n ~k ()))
  in
  let relaunch_s = float_of_int batch *. single.Runner.seconds in
  let relaunch =
    float_of_int (Spec.flops spec) /. relaunch_s /. 1e9
  in
  Printf.printf
    "  batch loop inside CPEs: %8.2f Gflops\n  one launch per element: %8.2f \
     Gflops (%.1f%% slower)\n"
    inside relaunch
    (100.0 *. (1.0 -. (relaunch /. inside)));

  header "ablation: machine-parameter sensitivity of the pipeline";
  let spec = Spec.make ~m:8192 ~n:8192 ~k:8192 () in
  let base = ours spec in
  let with_cfg cfg =
    (Runner.measure (Compile.run_exn (Session.create ~no_cache:true ~arch:cfg ()) spec))
      .Runner.gflops
  in
  Printf.printf "  baseline model:            %8.2f Gflops\n" base;
  Printf.printf "  memory bandwidth / 2:      %8.2f Gflops (DMA hiding saturates)\n"
    (with_cfg { config with Config.mem_bw_bytes_per_s = config.Config.mem_bw_bytes_per_s /. 2.0 });
  Printf.printf "  RMA bandwidth / 4:         %8.2f Gflops (broadcast still hidden)\n"
    (with_cfg { config with Config.rma_bw_bytes_per_s = config.Config.rma_bw_bytes_per_s /. 4.0 });
  Printf.printf "  barrier latency x 10:      %8.2f Gflops (sync on the critical path)\n"
    (with_cfg { config with Config.sync_latency_s = config.Config.sync_latency_s *. 10.0 });

  header "extension: GEMV from the same decomposition (§9)";
  List.iter
    (fun (m, n) ->
      let g = Gemv.compile ~config (Gemv.make_spec ~m ~n ()) in
      let p = Gemv.measure g in
      Printf.printf "  gemv %6dx%-6d %8.2f Gflops (%.1f%% of the %.1f Gflops bandwidth bound)\n"
        m n p.Runner.gflops
        (100.0 *. p.Runner.gflops /. (0.25 *. config.Config.mem_bw_bytes_per_s /. 1e9))
        (0.25 *. config.Config.mem_bw_bytes_per_s /. 1e9))
    [ (4096, 4096); (8192, 8192); (16384, 8192) ];
  Printf.printf
    "  (memory-bound at 0.25 flops/byte, as expected: the x panel is shared\n\
    \   over the mesh with the Fig. 8c all-broadcast, but A traffic dominates)\n" 

(* ------------------------------------------------------------------ *)
(* Resilience: simulated cost of fault recovery                         *)
(* ------------------------------------------------------------------ *)

let resilience () =
  header "resilience: clean vs faulted runs (exact simulation)";
  (* every scenario builds a fresh plan so the injection stats are its own;
     seeds are fixed so the series is reproducible *)
  let timing_kinds =
    [ Fault.Jitter; Fault.Stall; Fault.Straggler; Fault.Delay_reply ]
  in
  let scenarios =
    [
      ("clean", fun () -> None);
      ( "timing-noise",
        fun () ->
          Some
            (Fault.plan
               ~spec:(Fault.spec_with ~kinds:timing_kinds Fault.default_spec)
               ~seed:1 ()) );
      ( "drops-redelivered",
        fun () ->
          Some
            (Fault.plan
               ~spec:
                 {
                   (Fault.spec_with ~kinds:[ Fault.Drop_reply ]
                      Fault.default_spec)
                   with
                   Fault.drop_prob = 0.1;
                   drop_permanent_frac = 0.0;
                 }
               ~seed:2 ()) );
      ( "drops-permanent",
        fun () ->
          Some
            (Fault.plan
               ~spec:
                 {
                   (Fault.spec_with ~kinds:[ Fault.Drop_reply ]
                      Fault.default_spec)
                   with
                   Fault.drop_prob = 1.0;
                   drop_permanent_frac = 1.0;
                 }
               ~seed:3 ()) );
    ]
  in
  let watchdog =
    { Engine.no_watchdog with Engine.max_events = Some 50_000_000 }
  in
  let shapes = [ (256, 256, 256); (512, 512, 512); (512, 512, 2048) ] in
  Printf.printf "%-16s %-20s %12s %10s  %s\n" "shape" "scenario" "time (ms)"
    "overhead" "recovery";
  let rows = ref [] in
  List.iter
    (fun (m, n, k) ->
      let compiled = Compile.run_exn (session ()) (Spec.make ~m ~n ~k ()) in
      let clean = ref 0.0 in
      List.iter
        (fun (name, plan) ->
          let faults = plan () in
          match Runner.timing_resilient ?faults ~watchdog compiled with
          | Error e -> failwith (Runner.error_to_string e)
          | Ok r ->
              if faults = None then clean := r.Runner.seconds;
              let overhead = 100.0 *. ((r.Runner.seconds /. !clean) -. 1.0) in
              let recovery = Runner.recovery_to_string r.Runner.recovery in
              let injected =
                match faults with
                | None -> "-"
                | Some f -> Fault.stats_to_string f
              in
              rows :=
                [ string_of_int m; string_of_int n; string_of_int k; name;
                  Printf.sprintf "%.4f" (1000.0 *. r.Runner.seconds);
                  Printf.sprintf "%.2f" overhead; recovery; injected ]
                :: !rows;
              Printf.printf "%-16s %-20s %12.4f %9.2f%%  %s [%s]\n%!"
                (Printf.sprintf "%dx%dx%d" m n k)
                name
                (1000.0 *. r.Runner.seconds)
                overhead recovery injected)
        scenarios)
    shapes;
  csv "resilience"
    [ "m"; "n"; "k"; "scenario"; "ms"; "overhead_pct"; "recovery"; "injected" ]
    (List.rev !rows);
  Printf.printf
    "(clean runs pay nothing: with no plan the fault hooks short-circuit and \
     timings are bit-identical)\n"

(* ------------------------------------------------------------------ *)
(* Durability: the persistent plan store (DESIGN.md §13)                 *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let percentile p xs =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  a.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let durability () =
  header "durability: persistent plan store — cold, warm start, concurrent";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "swgemm-bench-store.%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let shapes = List.init 16 (fun i -> 192 + (32 * i)) in
  let spec_of s = Spec.make ~m:s ~n:s ~k:s () in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  (* cold: every compile misses memory and disk, pays the pipeline and
     the store write-back *)
  let store = Sw_host.Store.open_ ~schema:Compile.store_schema ~dir () in
  let cold_session = Session.create ~store ~arch:config () in
  let cold =
    List.map (fun s -> time (fun () -> Compile.run_exn cold_session (spec_of s)))
      shapes
  in
  (* warm start: a restarted process reloads the plans from disk into the
     in-memory cache, then every compile is a memory hit *)
  let store2 = Sw_host.Store.open_ ~schema:Compile.store_schema ~dir () in
  let warm_session = Session.create ~store:store2 ~arch:config () in
  let t0 = Unix.gettimeofday () in
  let loaded = Session.warm_start warm_session in
  let warm_load_s = Unix.gettimeofday () -. t0 in
  let warm =
    List.map (fun s -> time (fun () -> Compile.run_exn warm_session (spec_of s)))
      shapes
  in
  Printf.printf "  cold (pipeline + store write): mean %8.3f ms over %d shapes\n"
    (1000.0 *. mean cold) (List.length shapes);
  Printf.printf
    "  warm start: %d plan(s) loaded in %.3f ms; compiles then mean %8.4f ms\n"
    loaded (1000.0 *. warm_load_s) (1000.0 *. mean warm);
  (* concurrent cacheless sessions sharing the one store: every request is
     a validated disk read + decode, the daemon's steady state *)
  let requests = List.concat_map (fun s -> [ s; s; s; s ]) shapes in
  let latencies =
    pmap
      (fun s ->
        let session = Session.create ~store:store2 ~arch:config () in
        time (fun () -> Compile.run_exn session (spec_of s)))
      requests
  in
  let p50 = percentile 0.50 latencies and p99 = percentile 0.99 latencies in
  Printf.printf
    "  shared store, %d concurrent requests: p50 %8.4f ms, p99 %8.4f ms\n"
    (List.length requests) (1000.0 *. p50) (1000.0 *. p99);
  let st = Sw_host.Store.stats store2 in
  Printf.printf "  store: %s\n" (Sw_host.Store.stats_to_string st);
  csv "durability"
    [ "shape"; "cold_s"; "warm_s" ]
    (List.map2
       (fun s (c, w) ->
         [ string_of_int s; Printf.sprintf "%.6f" c; Printf.sprintf "%.6f" w ])
       shapes
       (List.combine cold warm));
  csv "durability_concurrent"
    [ "requests"; "warm_loaded"; "warm_load_s"; "p50_s"; "p99_s" ]
    [
      [
        string_of_int (List.length requests);
        string_of_int loaded;
        Printf.sprintf "%.6f" warm_load_s;
        Printf.sprintf "%.6f" p50;
        Printf.sprintf "%.6f" p99;
      ];
    ];
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Autotuning: searched decompositions vs the paper defaults            *)
(* ------------------------------------------------------------------ *)

let tune_shapes =
  [ (2048, 2048, 2048); (4096, 4096, 4096); (4096, 16384, 8192); (8192, 8192, 8192) ]

let tune_budget = 12

let tune () =
  header "tune: searched decompositions vs paper defaults (tuning DB)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "swgemm-bench-tune.%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let db = Sw_tune.Tune_db.open_ ~dir () in
  let jobs = match !pool with Some p -> Sw_host.Pool.jobs p | None -> 1 in
  Printf.printf "%-18s %12s %12s %9s %9s %7s\n" "shape" "default GF"
    "tuned GF" "speedup" "measured" "pruned";
  let rows =
    List.map
      (fun (m, n, k) ->
        let spec = Spec.make ~m ~n ~k () in
        match Sw_tune.Search.run ~budget:tune_budget ~jobs ~db ~config spec with
        | Error e -> failwith (Printf.sprintf "tune %dx%dx%d: %s" m n k e)
        | Ok o ->
            let open Sw_tune.Search in
            if o.gflops +. 1e-9 < o.default_gflops then
              failwith
                (Printf.sprintf
                   "tune %dx%dx%d: tuned %.2f Gflops lost to the paper \
                    default %.2f"
                   m n k o.gflops o.default_gflops);
            let pruned =
              List.length o.entries - o.measurements
            in
            log_gflops o.gflops;
            Printf.printf "%-18s %12.2f %12.2f %8.2fx %9d %7d\n"
              (Printf.sprintf "%dx%dx%d" m n k)
              o.default_gflops o.gflops
              (o.gflops /. o.default_gflops)
              o.measurements pruned;
            [
              Printf.sprintf "%dx%dx%d" m n k;
              Printf.sprintf "%.2f" o.default_gflops;
              Printf.sprintf "%.2f" o.gflops;
              Printf.sprintf "%.4f" (o.gflops /. o.default_gflops);
              string_of_int o.measurements;
              string_of_int pruned;
            ])
      tune_shapes
  in
  (* warm pass: the DB now holds every winner, so repeat traffic must be
     served with zero new simulator measurements *)
  List.iter
    (fun (m, n, k) ->
      let spec = Spec.make ~m ~n ~k () in
      match Sw_tune.Search.run ~budget:tune_budget ~jobs ~db ~config spec with
      | Error e -> failwith (Printf.sprintf "warm tune %dx%dx%d: %s" m n k e)
      | Ok o ->
          if not o.Sw_tune.Search.from_db then
            failwith
              (Printf.sprintf "warm tune %dx%dx%d missed the tuning DB" m n k);
          if o.Sw_tune.Search.measurements <> 0 then
            failwith
              (Printf.sprintf "warm tune %dx%dx%d spent %d measurement(s)" m n
                 k o.Sw_tune.Search.measurements))
    tune_shapes;
  Printf.printf
    "  warm DB: %d repeat request(s) served with zero simulator measurements\n"
    (List.length tune_shapes);
  csv "tune"
    [ "shape"; "default_gflops"; "tuned_gflops"; "speedup"; "measured"; "pruned" ]
    rows;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Architecture presets: the same GEMMs across mesh geometries          *)
(* ------------------------------------------------------------------ *)

let arch_presets =
  [ "sw26010pro"; "sw26010pro-4x4"; "sw26010pro-8x4"; "sw26010pro-16x16" ]

let arch_shapes =
  [ (4096, 4096, 4096); (8192, 8192, 8192); (4096, 16384, 8192) ]

let arch () =
  header "architecture presets: fixed shapes across mesh geometries";
  Printf.printf "%-18s %-18s %12s %12s %10s\n" "preset" "shape" "Gflops"
    "time (ms)" "of peak";
  let rows = ref [] in
  let work =
    List.concat_map
      (fun name -> List.map (fun s -> (name, s)) arch_shapes)
      arch_presets
  in
  let measured =
    pmap
      (fun (name, (m, n, k)) ->
        let cfg =
          match Arch_desc.config_of_name name with
          | Some c -> c
          | None -> failwith ("unknown preset " ^ name)
        in
        let spec = Spec.make ~m ~n ~k () in
        let p = Runner.measure (Compile.run_exn (Session.create ~no_cache:true ~arch:cfg ()) spec) in
        (p.Runner.gflops, p.Runner.seconds, Config.peak_gflops cfg))
      work
  in
  List.iter2
    (fun (name, (m, n, k)) (g, secs, pk) ->
      log_gflops g;
      rows :=
        [ name; string_of_int m; string_of_int n; string_of_int k;
          Printf.sprintf "%.2f" g; Printf.sprintf "%.6f" secs ]
        :: !rows;
      Printf.printf "%-18s %-18s %12.2f %12.3f %9.1f%%\n%!" name
        (Printf.sprintf "%dx%dx%d" m n k)
        g (1000.0 *. secs) (100.0 *. g /. pk))
    work measured;
  csv "arch" [ "preset"; "m"; "n"; "k"; "gflops"; "seconds" ] (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Compile service: in-process daemon under concurrent load             *)
(* ------------------------------------------------------------------ *)

(* The swgemmd request path end to end, minus the fork: a Server on a
   loopback TCP port, one shared Session, 8 client domains x 64
   requests through Loadgen (the harness behind `swgemmgen client
   loadgen`). Bands pin the row count; the series itself asserts the
   service-level invariants — zero errors and byte-identical C. *)
let service () =
  header "compile service: in-process server, concurrent clients";
  let clients = 8 and requests = 64 in
  let session = Session.create ~arch:config () in
  let server =
    Sw_host.Server.create
      ~supervisor:(Sw_host.Supervise.create ())
      ~handler:(Service.handler (Service.create ~session ()))
      ()
  in
  let port = Sw_host.Server.listen_tcp server ~port:0 () in
  let serving = Thread.create (fun () -> Sw_host.Server.serve server) () in
  let spec = Spec.make ~m:512 ~n:512 ~k:512 () in
  let params = Sw_obs.Json.Obj [ ("spec", Spec.to_json spec) ] in
  let connect () = Sw_host.Client.connect_tcp ~port () in
  let r = Sw_cli.Loadgen.run ~connect ~params ~clients ~requests () in
  Sw_host.Server.drain server;
  Thread.join serving;
  if r.Sw_cli.Loadgen.errors > 0 then
    failwith
      (Printf.sprintf "service: %d request(s) failed" r.Sw_cli.Loadgen.errors);
  if not r.Sw_cli.Loadgen.identical_c then
    failwith "service: responses returned differing C";
  let p50 = Sw_cli.Loadgen.quantile_ms r.Sw_cli.Loadgen.latencies 0.5 in
  let p99 = Sw_cli.Loadgen.quantile_ms r.Sw_cli.Loadgen.latencies 0.99 in
  Printf.printf
    "%d request(s) over %d client(s): p50 %.3f ms, p99 %.3f ms, %.0f req/s\n"
    requests clients p50 p99
    (float_of_int requests /. r.Sw_cli.Loadgen.wall_s);
  let s = Sw_host.Server.stats server in
  Printf.printf "served %d, errored %d, shed %d, connections %d\n"
    s.Sw_host.Server.served s.Sw_host.Server.errored s.Sw_host.Server.shed
    s.Sw_host.Server.connections;
  csv "service"
    [ "client"; "requests"; "errors"; "mean_ms"; "max_ms" ]
    (List.map
       (fun row ->
         [
           string_of_int row.Sw_cli.Loadgen.client;
           string_of_int row.Sw_cli.Loadgen.requests;
           string_of_int row.Sw_cli.Loadgen.errors;
           Printf.sprintf "%.3f" (1000.0 *. row.Sw_cli.Loadgen.mean_s);
           Printf.sprintf "%.3f" (1000.0 *. row.Sw_cli.Loadgen.max_s);
         ])
       r.Sw_cli.Loadgen.rows)

(* ------------------------------------------------------------------ *)
(* Multi-cluster scaling (the MPI level of §2.1/§10)                    *)
(* ------------------------------------------------------------------ *)

let scaling () =
  header "multi-cluster scaling (processor level, 6 core groups)";
  let spec = Spec.make ~m:16384 ~n:16384 ~k:8192 () in
  Printf.printf "%-10s %-8s %12s %14s %12s\n" "clusters" "grid" "time (ms)"
    "Tflops" "efficiency";
  List.iter
    (fun clusters ->
      match Sw_multi.Plan.make spec ~clusters with
      | Error e -> failwith e
      | Ok plan ->
          let jobs = match !pool with Some p -> Sw_host.Pool.jobs p | None -> 1 in
          let s = Sw_multi.Multi_sim.measure ~jobs (session ()) plan in
          Printf.printf "%-10d %-8s %12.2f %14.3f %11.1f%%\n%!" clusters
            (Printf.sprintf "%dx%d" plan.Sw_multi.Plan.grid_rows
               plan.Sw_multi.Plan.grid_cols)
            (1000.0 *. s.Sw_multi.Multi_sim.seconds)
            (s.Sw_multi.Multi_sim.gflops /. 1000.0)
            (100.0 *. s.Sw_multi.Multi_sim.parallel_efficiency))
    [ 1; 2; 3; 4; 6 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the generator                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "Bechamel: wall-clock of the code generator (one test per figure)";
  let open Bechamel in
  let open Toolkit in
  let gen name spec options =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Compile.run_exn (session ~options ()) spec)))
  in
  let tests =
    [
      gen "fig13:gen-4096^3" (Spec.make ~m:4096 ~n:4096 ~k:4096 ()) Options.all_on;
      gen "fig13:gen-baseline" (Spec.make ~m:4096 ~n:4096 ~k:4096 ()) Options.baseline;
      gen "fig14:gen-8192x8192x15360" (Spec.make ~m:8192 ~n:8192 ~k:15360 ()) Options.all_on;
      gen "fig15:gen-batched" (Spec.make ~batch:8 ~m:2048 ~n:2048 ~k:3072 ()) Options.all_on;
      gen "fig16:gen-fused"
        (Spec.make ~fusion:(Spec.Epilogue "tanh") ~m:4096 ~n:4096 ~k:4096 ())
        Options.all_on;
      Test.make ~name:"poly:gemm-dependence-analysis"
        (Staged.stage (fun () ->
             ignore (Sw_tree.Tree.initial [ Sw_tree.Stmt.gemm () ])));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun t ->
      let results = analyze (benchmark t) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-34s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-34s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)

let run_series name f =
  json_tables := [];
  gflops_log := [];
  let before = Option.map Sw_obs.Metrics.snapshot !metrics_registry in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let metrics_json =
    match (!metrics_registry, before) with
    | Some r, Some before ->
        Sw_obs.Metrics.to_json
          (Sw_obs.Metrics.diff ~before ~after:(Sw_obs.Metrics.snapshot r))
    | _ -> Sw_obs.Json.Null
  in
  let gflops_json =
    match List.rev !gflops_log with
    | [] -> Sw_obs.Json.Null
    | gs ->
        Sw_obs.Json.Obj
          [
            ("count", Int (List.length gs));
            ("mean", Float (mean gs));
            ("max", Float (List.fold_left Float.max 0.0 gs));
          ]
  in
  let json =
    Sw_obs.Json.Obj
      [
        ("series", String name);
        ( "config",
          Obj
            [
              ( "mesh",
                String
                  (Printf.sprintf "%dx%d" config.Config.mesh_rows
                     config.Config.mesh_cols) );
              ("peak_gflops", Float peak);
              ( "mem_bw_gbytes_per_s",
                Float (config.Config.mem_bw_bytes_per_s /. 1e9) );
            ] );
        ("wall_seconds", Float wall);
        ("generated_gflops", gflops_json);
        ("tables", Obj (List.rev !json_tables));
        ("metrics", metrics_json);
      ]
  in
  Sw_obs.Json.write_file ~pretty:true
    ~path:(Filename.concat "results" ("BENCH_" ^ name ^ ".json"))
    json

(* ------------------------------------------------------------------ *)
(* Perf-regression sentinel                                             *)
(* ------------------------------------------------------------------ *)

(* `check` re-runs the fast, deterministic series and compares their
   BENCH_*.json against tolerance-band baselines committed under
   bench/baselines/. Gflops come from the calibrated machine model, so
   they are bit-stable and get a tight band; wall clock varies by host
   and only catches order-of-magnitude rot; row counts are structural
   and get zero tolerance (a deliberate change re-runs `check --write`). *)

let sentinel_series = [ "arch"; "cost"; "durability"; "service"; "tune" ]

let tolerance_spec = function
  | "arch" ->
      [
        ("generated_gflops.count", 0.0); ("generated_gflops.mean", 0.05);
        ("generated_gflops.max", 0.05); ("tables.arch.rows", 0.0);
        ("wall_seconds", 3.0);
      ]
  | "cost" -> [ ("tables.cost_cache.rows", 0.0); ("wall_seconds", 3.0) ]
  | "tune" ->
      [
        ("generated_gflops.count", 0.0); ("generated_gflops.mean", 0.05);
        ("generated_gflops.max", 0.05); ("tables.tune.rows", 0.0);
        ("wall_seconds", 3.0);
      ]
  | "service" -> [ ("tables.service.rows", 0.0); ("wall_seconds", 3.0) ]
  | "durability" ->
      [
        ("tables.durability.rows", 0.0);
        ("tables.durability_concurrent.rows", 0.0); ("wall_seconds", 3.0);
      ]
  | s -> failwith ("no tolerance spec for series " ^ s)

(* Dotted path into a BENCH json; a path ending at a list reads its
   length (row counts). *)
let resolve path json =
  let open Sw_obs.Json in
  let rec walk j = function
    | [] -> (
        match j with
        | Float f -> Some f
        | Int i -> Some (float_of_int i)
        | List l -> Some (float_of_int (List.length l))
        | _ -> None)
    | seg :: rest -> (
        match member seg j with Some j -> walk j rest | None -> None)
  in
  walk json (String.split_on_char '.' path)

let bench_result_path name =
  Filename.concat "results" ("BENCH_" ^ name ^ ".json")

let write_baseline ~baseline_dir name =
  let open Sw_obs.Json in
  match parse_file (bench_result_path name) with
  | Error e ->
      Printf.eprintf "check --write: cannot read %s: %s\n"
        (bench_result_path name) e;
      exit 1
  | Ok fresh ->
      let tolerances =
        List.map
          (fun (path, frac) ->
            match resolve path fresh with
            | None ->
                Printf.eprintf "check --write: %s has no %s\n" name path;
                exit 1
            | Some v ->
                Obj
                  [
                    ("path", String path); ("value", Float v);
                    ("tol_frac", Float frac);
                  ])
          (tolerance_spec name)
      in
      write_file ~pretty:true
        ~path:(Filename.concat baseline_dir (name ^ ".json"))
        (Obj [ ("series", String name); ("tolerances", List tolerances) ])

(* One message per violated band, naming the series and metric. *)
let check_failures ~baseline_dir name =
  let open Sw_obs.Json in
  match parse_file (Filename.concat baseline_dir (name ^ ".json")) with
  | Error e -> [ Printf.sprintf "%s: cannot read baseline: %s" name e ]
  | Ok base -> (
      match parse_file (bench_result_path name) with
      | Error e -> [ Printf.sprintf "%s: cannot read fresh result: %s" name e ]
      | Ok fresh ->
          let tolerances =
            match member "tolerances" base with Some (List l) -> l | _ -> []
          in
          if tolerances = [] then
            [ Printf.sprintf "%s: baseline has no tolerances" name ]
          else
            List.filter_map
              (fun tol ->
                match
                  ( Option.bind (member "path" tol) to_string_opt,
                    Option.bind (member "value" tol) to_float_opt,
                    Option.bind (member "tol_frac" tol) to_float_opt )
                with
                | Some path, Some value, Some frac -> (
                    match resolve path fresh with
                    | None ->
                        Some
                          (Printf.sprintf "%s: %s missing from fresh result"
                             name path)
                    | Some got ->
                        if
                          Float.abs (got -. value)
                          <= frac *. Float.abs value
                        then None
                        else
                          Some
                            (Printf.sprintf
                               "%s: %s = %g outside %g +/- %g%% of baseline"
                               name path got value (100.0 *. frac)))
                | _ -> Some (Printf.sprintf "%s: malformed tolerance entry" name))
              tolerances)

let all_series =
  [
    ("fig13", fig13); ("fig14", fig14); ("fig15", fig15); ("fig16", fig16);
    ("cost", cost); ("ablation", ablation); ("resilience", resilience);
    ("durability", durability); ("arch", arch); ("service", service);
    ("tune", tune);
    ("scaling", scaling);
    ("micro", micro);
  ]

let check ~baseline_dir ~compare_only ~write =
  if not compare_only then
    List.iter (fun n -> run_series n (List.assoc n all_series)) sentinel_series;
  if write then begin
    List.iter (write_baseline ~baseline_dir) sentinel_series;
    Printf.printf "bench check: wrote baselines for %s to %s\n"
      (String.concat ", " sentinel_series)
      baseline_dir
  end
  else
    match List.concat_map (check_failures ~baseline_dir) sentinel_series with
    | [] ->
        Printf.printf "bench check: %s within tolerance bands of %s\n"
          (String.concat ", " sentinel_series)
          baseline_dir
    | failures ->
        (* every violated band prints before the nonzero exit — a CI run
           that regresses three metrics names all three, not the first *)
        List.iter
          (fun f -> Printf.printf "bench check FAILED: %s\n" f)
          failures;
        Printf.printf "bench check: %d band(s) out of tolerance\n"
          (List.length failures);
        exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs = ref (Sw_host.Pool.default_jobs ()) in
  let compare_only = ref false in
  let write = ref false in
  let baseline_dir = ref (Filename.concat "bench" "baselines") in
  let rec strip = function
    | [] -> []
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            exit 1);
        strip rest
    | "--compare-only" :: rest ->
        compare_only := true;
        strip rest
    | "--write" :: rest ->
        write := true;
        strip rest
    | "--baselines" :: dir :: rest ->
        baseline_dir := dir;
        strip rest
    | a :: rest -> a :: strip rest
  in
  let args = strip args in
  let names = List.filter (fun a -> a <> "--metrics") args in
  if List.mem "--metrics" args then begin
    let r = Sw_obs.Metrics.create () in
    Sw_obs.Metrics.install r;
    metrics_registry := Some r
  end;
  Sw_host.Pool.with_pool ~jobs:!jobs @@ fun p ->
  pool := Some p;
  match names with
  | [ "check" ] ->
      check ~baseline_dir:!baseline_dir ~compare_only:!compare_only
        ~write:!write
  | [] -> List.iter (fun (n, f) -> run_series n f) all_series
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n all_series with
          | Some f -> run_series n f
          | None ->
              Printf.eprintf "unknown experiment %s (have: check, %s)\n" n
                (String.concat ", " (List.map fst all_series));
              exit 1)
        names
